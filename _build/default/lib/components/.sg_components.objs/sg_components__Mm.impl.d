lib/components/mm.ml: Hashtbl List Profiles Sg_kernel Sg_os
