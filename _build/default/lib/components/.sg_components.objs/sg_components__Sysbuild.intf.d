lib/components/sysbuild.mli: Sg_c3 Sg_cbuf Sg_kernel Sg_os Sg_storage
