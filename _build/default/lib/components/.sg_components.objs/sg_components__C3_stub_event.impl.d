lib/components/c3_stub_event.ml: Event Option Sg_c3 Sg_os Sg_storage
