lib/components/lock.ml: Hashtbl List Profiles Sched Sg_kernel Sg_os
