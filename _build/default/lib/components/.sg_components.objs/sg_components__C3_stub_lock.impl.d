lib/components/c3_stub_lock.ml: Lock Sg_c3 Sg_os
