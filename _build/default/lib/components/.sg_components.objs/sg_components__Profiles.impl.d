lib/components/profiles.ml: Lazy List Reg Sg_kernel String Usage
