lib/components/workloads.mli: Sysbuild
