lib/components/c3_stub_timer.ml: Option Sg_c3 Sg_os Timer
