lib/components/c3_stub_mm.ml: List Mm Option Sg_c3 Sg_os
