lib/components/ramfs.mli: Sg_cbuf Sg_os Sg_storage
