lib/components/event.mli: Sg_os
