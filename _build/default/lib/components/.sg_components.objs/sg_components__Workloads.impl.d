lib/components/workloads.ml: Char Event List Lock Mm Option Printf Ramfs Sched Sg_kernel Sg_os String Sysbuild Timer
