lib/components/event.ml: Hashtbl List Profiles Sched Sg_kernel Sg_os
