lib/components/timer.mli: Sg_os
