lib/components/lock.mli: Sg_os
