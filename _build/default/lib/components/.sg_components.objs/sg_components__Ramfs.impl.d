lib/components/ramfs.ml: Bytes Hashtbl List Profiles Sg_cbuf Sg_os Sg_storage String
