lib/components/sysbuild.ml: C3_stub_event C3_stub_fs C3_stub_lock C3_stub_mm C3_stub_sched C3_stub_timer Event Hashtbl List Lock Mm Ramfs Sched Sg_c3 Sg_cbuf Sg_os Sg_storage Timer
