(** Register-usage profiles of the six system services.

    Each component's interface operations execute a characteristic mix of
    register accesses — the scheduler's short queue operations churn the
    stack registers, the file system reads long runs of data words, the
    memory manager walks pointer-dense mapping trees. These mixes, not
    per-row tuning of outcome counts, determine each service's fault
    profile: the SWIFI verdict for a flip is always computed by
    {!Sg_kernel.Usage.classify} from the next use of the flipped
    register.

    A profile is expressed as one cyclic pattern of uses per register,
    repeated across the operation's execution window. *)

val build :
  duration_ns:int ->
  stride:int ->
  (Sg_kernel.Reg.t * Sg_kernel.Usage.use list) list ->
  Sg_kernel.Usage.t
(** [build ~duration_ns ~stride patterns] lays the k-th event of each
    register's cyclic pattern at offset [k * stride]. *)

val sched : string -> Sg_kernel.Usage.t option
(** Schedule for a scheduler interface function (short, stack-heavy
    queue manipulation; widest stack red zone of the six services). *)

val mm : string -> Sg_kernel.Usage.t option
(** Memory manager: pointer-dense tree walks, some dead temporaries, a
    revocation loop, and one address computation whose derived value is
    returned before validation. *)

val fs : string -> Sg_kernel.Usage.t option
(** RamFS: long data moves with frequently overwritten scratch
    registers; small stack footprint. *)

val lock : string -> Sg_kernel.Usage.t option
(** Lock: very short operations; the owner field is returned to the
    caller on contention paths. *)

val event : string -> Sg_kernel.Usage.t option
(** Event manager: hash lookups with scratch churn; trigger results
    escape to the caller. *)

val timer : string -> Sg_kernel.Usage.t option
(** Timer manager: wheel arithmetic, moderate stack use. *)
