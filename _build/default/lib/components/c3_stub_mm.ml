(* Hand-written C³ interface stub for the memory manager.

   Descriptors are virtual addresses in the component they are mapped in
   (paper §II-D): a root mapping's id is its vaddr; an alias into another
   component is keyed by (destination component, vaddr). Aliases depend
   on their source mapping (D1: parents recover first, root to leaf) and
   are recovered before a release so that recursive revocation has its
   side effects on the recovered server (D0). Replayed creations adopt
   surviving kernel PTEs, so physical frames are preserved. *)

module Sim = Sg_os.Sim
module Comp = Sg_os.Comp
module Tracker = Sg_c3.Tracker
module Cstub = Sg_c3.Cstub
module Serverstub = Sg_c3.Serverstub

(* Alias descriptors are keyed by (destination component, vaddr). *)
let alias_id ~dst ~dvaddr = (dst lsl 32) lor dvaddr

let desc_arg = function
  | "mman_alias_page" | "mman_release_page" -> Some 0
  | _ -> None

let track sim tr ~epoch fn args ret =
  match (fn, args, ret) with
  | "mman_get_page", [ Comp.VInt vaddr ], _ ->
      ignore
        (Tracker.add tr sim ~state:"mapped"
           ~meta:[ ("vaddr", Comp.VInt vaddr) ]
           ~epoch vaddr)
  | "mman_alias_page", [ Comp.VInt svaddr; Comp.VInt dst; Comp.VInt dvaddr ], _
    ->
      ignore
        (Tracker.add tr sim
           ~parent:(Tracker.Local svaddr)
           ~state:"aliased"
           ~meta:
             [
               ("svaddr", Comp.VInt svaddr);
               ("dst", Comp.VInt dst);
               ("dvaddr", Comp.VInt dvaddr);
             ]
           ~epoch
           (alias_id ~dst ~dvaddr))
  | "mman_release_page", [ Comp.VInt vaddr ], _ ->
      (* recursive revocation: the whole tracked subtree is gone (C_dr) *)
      let rec kill id =
        List.iter (fun c -> kill c.Tracker.d_id) (Tracker.children tr id);
        match Tracker.find tr id with
        | Some d -> d.Tracker.d_live <- false
        | None -> ()
      in
      kill vaddr
  | _ -> ()

let walk _sim wctx d =
  match Tracker.meta_int d "dvaddr" with
  | None ->
      (* root mapping: replay the grant; the manager adopts the PTE that
         survived the reboot, keeping the same frame *)
      let vaddr = Option.value (Tracker.meta_int d "vaddr") ~default:d.Tracker.d_id in
      ignore (wctx.Cstub.w_invoke "mman_get_page" [ Comp.VInt vaddr ])
  | Some dvaddr ->
      (* alias: its source mapping must exist first (D1) *)
      let svaddr = wctx.Cstub.w_parent_id d in
      let dst = Option.value (Tracker.meta_int d "dst") ~default:0 in
      ignore
        (wctx.Cstub.w_invoke "mman_alias_page"
           [ Comp.VInt svaddr; Comp.VInt dst; Comp.VInt dvaddr ])

let client_config () =
  {
    Cstub.cfg_iface = Mm.iface;
    cfg_mode = `Ondemand;
    cfg_desc_arg = desc_arg;
    cfg_parent_arg = (fun _ -> None);
    cfg_d0_children = true;
    cfg_virtual_create = (fun _ -> false);
    cfg_terminate_fns = [ "mman_release_page" ];
    cfg_track = track;
    cfg_walk = walk;
  }

let server_config () =
  {
    Serverstub.ss_iface = Mm.iface;
    ss_global = false;
    ss_desc_arg = desc_arg;
    ss_parent_arg = (fun _ -> None);
    ss_create_fns = [ "mman_get_page"; "mman_alias_page" ];
    ss_create_meta = (fun _ _ _ -> []);
    ss_boot_init = Serverstub.no_boot_init;
  }
