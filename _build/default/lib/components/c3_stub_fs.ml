(* Hand-written C³ interface stub for the RAM file system — the largest
   of the original C³ stubs (the paper reports ~398 LOC of manual C for
   this interface).

   Descriptor: the file descriptor, remapped on recovery. Tracked data:
   the path in the FS namespace and the offset, updated from the return
   values of read and write (paper §II-C). The recovery walk re-splits
   the full path from the root and restores the offset with lseek —
   whereupon the server side restores the file *contents* from the
   storage component's slices (G1). *)

module Comp = Sg_os.Comp
module Tracker = Sg_c3.Tracker
module Cstub = Sg_c3.Cstub
module Serverstub = Sg_c3.Serverstub

let desc_arg = function
  | "tsplit" | "tread" | "twrite" | "tlseek" | "trelease" -> Some 0
  | _ -> None

let bump_off sim tr id delta =
  match Tracker.find tr id with
  | Some d ->
      let off = Option.value (Tracker.meta_int d "off") ~default:0 in
      Tracker.set_meta tr sim d "off" (Comp.VInt (off + delta))
  | None -> ()

let track sim tr ~epoch fn args ret =
  match (fn, args, ret) with
  | "tsplit", [ Comp.VInt parent; Comp.VStr name ], Comp.VInt fd ->
      let path =
        if parent = Ramfs.root_fd then "/" ^ name
        else
          match Tracker.find tr parent with
          | Some p -> Option.value (Tracker.meta_str p "path") ~default:"" ^ "/" ^ name
          | None -> "/" ^ name
      in
      let par = if parent = Ramfs.root_fd then None else Some (Tracker.Local parent) in
      ignore
        (Tracker.add tr sim ?parent:par ~state:"open"
           ~meta:[ ("path", Comp.VStr path); ("off", Comp.VInt 0) ]
           ~epoch fd)
  | "tread", [ Comp.VInt fd; _ ], Comp.VStr data ->
      bump_off sim tr fd (String.length data)
  | "twrite", [ Comp.VInt fd; _ ], Comp.VInt n -> bump_off sim tr fd n
  | "tlseek", [ Comp.VInt fd; _ ], Comp.VInt off -> (
      match Tracker.find tr fd with
      | Some d -> Tracker.set_meta tr sim d "off" (Comp.VInt off)
      | None -> ())
  | "trelease", [ Comp.VInt fd ], _ -> (
      match Tracker.find tr fd with
      | Some d -> d.Tracker.d_live <- false
      | None -> ())
  | _ -> ()

let walk _sim wctx d =
  (* re-split the full tracked path from the root: the server rebuilds
     the file from storage slices if its contents were lost, then the
     offset is restored — the paper's "open and lseek" walk *)
  let path = Option.value (Tracker.meta_str d "path") ~default:"" in
  let rel = if String.length path > 0 then String.sub path 1 (String.length path - 1) else "" in
  let fd =
    Comp.int_exn
      (wctx.Cstub.w_invoke "tsplit" [ Comp.VInt Ramfs.root_fd; Comp.VStr rel ])
  in
  d.Tracker.d_server_id <- fd;
  let off = Option.value (Tracker.meta_int d "off") ~default:0 in
  if off <> 0 then ignore (wctx.Cstub.w_invoke "tlseek" [ Comp.VInt fd; Comp.VInt off ])

let client_config () =
  {
    Cstub.cfg_iface = Ramfs.iface;
    cfg_mode = `Ondemand;
    cfg_desc_arg = desc_arg;
    cfg_parent_arg = (fun _ -> None);
    cfg_d0_children = false;
    cfg_virtual_create = (fun fn -> fn = "tsplit");
    cfg_terminate_fns = [ "trelease" ];
    cfg_track = track;
    cfg_walk = walk;
  }

let server_config () =
  {
    Serverstub.ss_iface = Ramfs.iface;
    ss_global = false;
    ss_desc_arg = desc_arg;
    ss_parent_arg = (fun _ -> None);
    ss_create_fns = [ "tsplit" ];
    ss_create_meta = (fun _ _ _ -> []);
    ss_boot_init = Serverstub.no_boot_init;
  }
