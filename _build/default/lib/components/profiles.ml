open Sg_kernel

let build ~duration_ns ~stride patterns =
  let events =
    List.concat_map
      (fun (reg, cycle) ->
        let n = List.length cycle in
        if n = 0 then []
        else
          let rec go k acc =
            let at = k * stride in
            if at > duration_ns then acc
            else
              let use = List.nth cycle (k mod n) in
              go (k + 1) ({ Usage.at; reg; use } :: acc)
          in
          go 0 [])
      patterns
  in
  Usage.make ~duration_ns events

let checked = Usage.Read_data Usage.Checked
let returned = Usage.Read_data Usage.Returned
let loop_bound = Usage.Read_data Usage.Loop_bound
let ptr bound_bits = Usage.Read_pointer { bound_bits; escapes = false }
let ptr_escapes bound_bits = Usage.Read_pointer { bound_bits; escapes = true }
let stack red_bits = Usage.Read_stackptr { red_bits }
let w = Usage.Write

let rec repeat n x = if n <= 0 then [] else x :: repeat (n - 1) x

(* Scheduler: short queue operations, deep call chains (wide stack red
   zone), almost every register live; one loop bound over the runqueue. *)
let sched_profile =
  lazy
    (build ~duration_ns:780 ~stride:60
       [
         (Reg.EAX, [ checked ]);
         (Reg.EBX, [ ptr 17 ]);
         (Reg.ECX, w :: repeat 5 checked);
         (Reg.EDX, loop_bound :: repeat 11 checked);
         (Reg.ESI, [ ptr 17 ]);
         (Reg.EDI, [ checked ]);
         (Reg.ESP, [ stack 14 ]);
         (Reg.EBP, [ stack 14 ]);
       ])

(* Memory manager: pointer-dense mapping-tree walks; two scratch
   registers periodically overwritten; the revocation loop is bounded by
   a subtree count; one computed address escapes on the alias path. *)
let mm_profile =
  lazy
    (build ~duration_ns:1200 ~stride:40
       [
         (Reg.EAX, [ checked ]);
         (Reg.EBX, [ ptr 18 ]);
         (Reg.ECX, w :: repeat 2 checked);
         (Reg.EDX, [ w; loop_bound ] @ repeat 10 checked);
         (Reg.ESI, ptr_escapes 18 :: repeat 29 (ptr 18));
         (Reg.EDI, [ ptr 18 ]);
         (Reg.ESP, [ stack 9 ]);
         (Reg.EBP, [ stack 9 ]);
       ])

(* RamFS: long data moves through scratch registers; shallow call depth
   so a small stack red zone. *)
let fs_profile =
  lazy
    (build ~duration_ns:1520 ~stride:80
       [
         (Reg.EAX, [ checked ]);
         (Reg.EBX, [ ptr 19 ]);
         (Reg.ECX, w :: repeat 2 checked);
         (Reg.EDX, w :: repeat 5 checked);
         (Reg.ESI, [ ptr 19 ]);
         (Reg.EDI, [ checked ]);
         (Reg.ESP, [ stack 5 ]);
         (Reg.EBP, [ stack 5 ]);
       ])

(* Lock: the shortest operations of the six; the owner word is returned
   to the caller on the contention path. *)
let lock_profile =
  lazy
    (build ~duration_ns:440 ~stride:20
       [
         (Reg.EAX, returned :: repeat 21 checked);
         (Reg.EBX, [ ptr 16 ]);
         (Reg.ECX, w :: repeat 2 checked);
         (Reg.EDX, w :: repeat 5 checked);
         (Reg.ESI, [ ptr 16 ]);
         (Reg.EDI, [ checked ]);
         (Reg.ESP, [ stack 9 ]);
         (Reg.EBP, [ stack 9 ]);
       ])

(* Event manager: hash-bucket lookups with scratch churn; the trigger
   count escapes to the caller. *)
let event_profile =
  lazy
    (build ~duration_ns:840 ~stride:30
       [
         (Reg.EAX, returned :: repeat 27 checked);
         (Reg.EBX, [ ptr 17 ]);
         (Reg.ECX, w :: repeat 2 checked);
         (Reg.EDX, w :: repeat 4 checked);
         (Reg.ESI, [ ptr 17 ]);
         (Reg.EDI, [ checked ]);
         (Reg.ESP, [ stack 4 ]);
         (Reg.EBP, [ stack 4 ]);
       ])

(* Timer manager: wheel arithmetic; moderate stack use, one scratch. *)
let timer_profile =
  lazy
    (build ~duration_ns:600 ~stride:50
       [
         (Reg.EAX, [ checked ]);
         (Reg.EBX, [ ptr 16 ]);
         (Reg.ECX, w :: repeat 3 checked);
         (Reg.EDX, [ checked ]);
         (Reg.ESI, [ ptr 16 ]);
         (Reg.EDI, [ checked ]);
         (Reg.ESP, [ stack 7 ]);
         (Reg.EBP, [ stack 7 ]);
       ])

let of_prefix profile prefix fn =
  if String.length fn >= String.length prefix
     && String.sub fn 0 (String.length prefix) = prefix
  then Some (Lazy.force profile)
  else None

let sched fn = of_prefix sched_profile "sched_" fn
let mm fn = of_prefix mm_profile "mman_" fn
let fs fn = of_prefix fs_profile "t" fn
let lock fn = of_prefix lock_profile "lock_" fn
let event fn = of_prefix event_profile "evt_" fn
let timer fn = of_prefix timer_profile "timer_" fn
