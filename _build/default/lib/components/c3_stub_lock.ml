(* Hand-written C³ interface stub for the lock component.

   Descriptor: the lock id (remapped when the rebooted server allocates a
   fresh id). State machine: available --take--> taken --release-->
   available; the recovery walk re-allocates and, if the descriptor was
   taken, re-acquires — re-contending if another recovered client got
   there first, exactly the behaviour sketched in paper §II-C. *)

module Sim = Sg_os.Sim
module Comp = Sg_os.Comp
module Tracker = Sg_c3.Tracker
module Cstub = Sg_c3.Cstub
module Serverstub = Sg_c3.Serverstub

let desc_arg = function
  | "lock_take" | "lock_release" | "lock_free" -> Some 0
  | _ -> None

let track sim tr ~epoch fn args ret =
  match (fn, args, ret) with
  | "lock_alloc", [], Comp.VInt id ->
      ignore (Tracker.add tr sim ~state:"available" ~meta:[] ~epoch id)
  | "lock_take", [ Comp.VInt id ], _ -> (
      match Tracker.find tr id with
      | Some d -> Tracker.set_state tr sim d "taken"
      | None -> ())
  | "lock_release", [ Comp.VInt id ], _ -> (
      match Tracker.find tr id with
      | Some d -> Tracker.set_state tr sim d "available"
      | None -> ())
  | "lock_free", [ Comp.VInt id ], _ -> (
      match Tracker.find tr id with
      | Some d -> d.Tracker.d_live <- false
      | None -> ())
  | _ -> ()

let walk _sim wctx d =
  let id = Comp.int_exn (wctx.Cstub.w_invoke "lock_alloc" []) in
  d.Tracker.d_server_id <- id;
  if d.Tracker.d_state = "taken" then
    (* re-acquire on behalf of the logical holder; the recovering thread
       then re-contends behind its own redo if it was not the holder *)
    ignore (wctx.Cstub.w_invoke "lock_take" [ Comp.VInt id ])

let client_config () =
  {
    Cstub.cfg_iface = Lock.iface;
    cfg_mode = `Ondemand;
    cfg_desc_arg = desc_arg;
    cfg_parent_arg = (fun _ -> None);
    cfg_d0_children = false;
    cfg_virtual_create = (fun fn -> fn = "lock_alloc");
    cfg_terminate_fns = [ "lock_free" ];
    cfg_track = track;
    cfg_walk = walk;
  }

let server_config ~sched_port () =
  {
    Serverstub.ss_iface = Lock.iface;
    ss_global = false;
    ss_desc_arg = desc_arg;
    ss_parent_arg = (fun _ -> None);
    ss_create_fns = [ "lock_alloc" ];
    ss_create_meta = (fun _ _ _ -> []);
    ss_boot_init = Lock.boot_init_t0 ~sched_port;
  }
