(* Hand-written C³ interface stub for the scheduler component.

   This is the error-prone manual code SuperGlue replaces with a
   declarative specification (idl/sched.sgidl): the descriptor is the
   thread id, the tracked data is the priority, and the recovery walk
   re-registers the thread with the rebooted scheduler; a thread whose
   tracked state was "blocked" then re-blocks by replaying its own
   interrupted sched_blk invocation. *)

module Sim = Sg_os.Sim
module Comp = Sg_os.Comp
module Tracker = Sg_c3.Tracker
module Cstub = Sg_c3.Cstub
module Serverstub = Sg_c3.Serverstub

let desc_arg = function
  | "sched_create" | "sched_blk" | "sched_wakeup" | "sched_exit" -> Some 0
  | _ -> None

let track sim tr ~epoch fn args ret =
  match (fn, args, ret) with
  | "sched_create", [ Comp.VInt tid; Comp.VInt prio ], _ ->
      ignore
        (Tracker.add tr sim ~state:"ready"
           ~meta:[ ("prio", Comp.VInt prio) ]
           ~epoch tid)
  | "sched_blk", [ Comp.VInt tid ], _ -> (
      (* a completed block has consumed any pending wakeup *)
      match Tracker.find tr tid with
      | Some d -> Tracker.set_state tr sim d "ready"
      | None -> ())
  | "sched_wakeup", [ Comp.VInt tid ], _ -> (
      (* the target thread now owns a delivered or latched wakeup *)
      match Tracker.find tr tid with
      | Some d -> Tracker.set_state tr sim d "woken"
      | None -> ())
  | "sched_exit", [ Comp.VInt tid ], _ -> (
      match Tracker.find tr tid with
      | Some d -> d.Tracker.d_live <- false
      | None -> ())
  | _ -> ()

let walk _sim wctx d =
  (* re-register the thread (ids are kernel-stable); if it owned an
     undelivered wakeup, re-latch it — losing the latch would strand the
     thread in its next block *)
  let prio = Option.value (Tracker.meta_int d "prio") ~default:10 in
  ignore
    (wctx.Cstub.w_invoke "sched_create"
       [ Comp.VInt d.Tracker.d_id; Comp.VInt prio ]);
  if d.Tracker.d_state = "woken" then
    ignore (wctx.Cstub.w_invoke "sched_wakeup" [ Comp.VInt d.Tracker.d_id ])

let client_config () =
  {
    Cstub.cfg_iface = Sched.iface;
    cfg_mode = `Ondemand;
    cfg_desc_arg = desc_arg;
    cfg_parent_arg = (fun _ -> None);
    cfg_d0_children = false;
    cfg_virtual_create = (fun _ -> false);
    cfg_terminate_fns = [ "sched_exit" ];
    cfg_track = track;
    cfg_walk = walk;
  }

let server_config () =
  {
    Serverstub.ss_iface = Sched.iface;
    ss_global = false;
    ss_desc_arg = desc_arg;
    ss_parent_arg = (fun _ -> None);
    ss_create_fns = [ "sched_create" ];
    ss_create_meta = (fun _ _ _ -> []);
    ss_boot_init = Sched.boot_init_t0;
  }
