(** Zero-copy shared buffer management (cbufs).

    RamFS shares file contents with its clients and with the storage
    component through zero-copy buffers in which only the producing
    component has write access and every other component maps the buffer
    read-only (paper §II-C, citing the cbuf subsystem [17]). The access
    restriction prevents fault propagation through the buffer, so — like
    the kernel — this manager is *outside the fault domain* (paper
    §II-E) and is never fault-injected.

    Buffers are identified by small integers that can be passed through
    component interfaces as plain values. *)

type id = int

type t

val create : unit -> t

val alloc : t -> Sg_os.Sim.t -> owner:Sg_os.Comp.cid -> size:int -> id
(** Allocate a buffer writable only by [owner]; charges the map cost. *)

val write : t -> Sg_os.Sim.t -> writer:Sg_os.Comp.cid -> id -> pos:int -> string ->
  (unit, [ `Denied | `Bounds | `Unknown ]) result
(** Write into the buffer; only the owner may write. *)

val grant_read : t -> Sg_os.Sim.t -> id -> reader:Sg_os.Comp.cid -> unit
(** Map the buffer read-only into another component; charges the map
    cost. Idempotent. *)

val read : t -> reader:Sg_os.Comp.cid -> id -> pos:int -> len:int ->
  (string, [ `Denied | `Bounds | `Unknown ]) result
(** Read [len] bytes at [pos]; the reader must be the owner or have been
    granted read access. *)

val size : t -> id -> int option
val owner : t -> id -> Sg_os.Comp.cid option
val free : t -> id -> unit
val count : t -> int
