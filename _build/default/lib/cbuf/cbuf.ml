module Sim = Sg_os.Sim
module Cost = Sg_kernel.Cost

type id = int

type buf = {
  b_owner : Sg_os.Comp.cid;
  b_data : Bytes.t;
  mutable b_readers : Sg_os.Comp.cid list;
}

type t = { mutable next_id : int; bufs : (id, buf) Hashtbl.t }

let create () = { next_id = 1; bufs = Hashtbl.create 64 }

let alloc t sim ~owner ~size =
  Sim.charge sim (Sim.cost sim).Cost.cbuf_map_ns;
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.bufs id
    { b_owner = owner; b_data = Bytes.make size '\000'; b_readers = [] };
  id

let write t sim ~writer id ~pos s =
  Sim.charge sim (Sim.cost sim).Cost.cbuf_map_ns;
  match Hashtbl.find_opt t.bufs id with
  | None -> Error `Unknown
  | Some b ->
      if b.b_owner <> writer then Error `Denied
      else if pos < 0 || pos + String.length s > Bytes.length b.b_data then
        Error `Bounds
      else begin
        Bytes.blit_string s 0 b.b_data pos (String.length s);
        Ok ()
      end

let grant_read t sim id ~reader =
  Sim.charge sim (Sim.cost sim).Cost.cbuf_map_ns;
  match Hashtbl.find_opt t.bufs id with
  | None -> ()
  | Some b ->
      if not (List.mem reader b.b_readers) then
        b.b_readers <- reader :: b.b_readers

let read t ~reader id ~pos ~len =
  match Hashtbl.find_opt t.bufs id with
  | None -> Error `Unknown
  | Some b ->
      if b.b_owner <> reader && not (List.mem reader b.b_readers) then
        Error `Denied
      else if pos < 0 || len < 0 || pos + len > Bytes.length b.b_data then
        Error `Bounds
      else Ok (Bytes.sub_string b.b_data pos len)

let size t id =
  Option.map (fun b -> Bytes.length b.b_data) (Hashtbl.find_opt t.bufs id)

let owner t id = Option.map (fun b -> b.b_owner) (Hashtbl.find_opt t.bufs id)
let free t id = Hashtbl.remove t.bufs id
let count t = Hashtbl.length t.bufs
