lib/cbuf/cbuf.ml: Bytes Hashtbl List Option Sg_kernel Sg_os String
