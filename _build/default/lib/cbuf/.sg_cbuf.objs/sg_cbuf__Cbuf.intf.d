lib/cbuf/cbuf.mli: Sg_os
