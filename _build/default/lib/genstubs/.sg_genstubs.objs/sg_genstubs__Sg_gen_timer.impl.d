lib/genstubs/sg_gen_timer.ml: List Sg_c3 Sg_kernel Sg_os Sg_storage
