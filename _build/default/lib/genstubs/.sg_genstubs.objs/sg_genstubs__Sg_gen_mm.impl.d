lib/genstubs/sg_gen_mm.ml: List Sg_c3 Sg_os Sg_storage
