lib/genstubs/sg_gen_fs.ml: Sg_c3 Sg_os Sg_storage String
