lib/genstubs/gen_stubset.ml: Sg_c3 Sg_components Sg_gen_evt Sg_gen_fs Sg_gen_lock Sg_gen_mm Sg_gen_sched Sg_gen_timer
