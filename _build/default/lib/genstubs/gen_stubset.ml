(* Wires the compiler-emitted stub modules into a Sysbuild stub set —
   the "generated code" configuration, behaviourally identical to the
   interpreted SuperGlue backend (differentially tested). *)

module Sysbuild = Sg_components.Sysbuild
module Tracker = Sg_c3.Tracker

let stubset storage =
  {
    Sysbuild.st_name = "superglue-gen";
    st_flavor = Tracker.Superglue;
    st_client =
      (fun ~iface ->
        match iface with
        | "sched" -> Sg_gen_sched.client_config ~storage ()
        | "mm" -> Sg_gen_mm.client_config ~storage ()
        | "fs" -> Sg_gen_fs.client_config ~storage ()
        | "lock" -> Sg_gen_lock.client_config ~storage ()
        | "evt" -> Sg_gen_evt.client_config ~storage ()
        | "timer" -> Sg_gen_timer.client_config ~storage ()
        | iface -> invalid_arg ("gen_stubset: unknown interface " ^ iface));
    st_server =
      (fun ~iface ~wakeup_dep ->
        match iface with
        | "sched" -> Sg_gen_sched.server_config ?wakeup_dep ()
        | "mm" -> Sg_gen_mm.server_config ?wakeup_dep ()
        | "fs" -> Sg_gen_fs.server_config ?wakeup_dep ()
        | "lock" -> Sg_gen_lock.server_config ?wakeup_dep ()
        | "evt" -> Sg_gen_evt.server_config ?wakeup_dep ()
        | "timer" -> Sg_gen_timer.server_config ?wakeup_dep ()
        | iface -> invalid_arg ("gen_stubset: unknown interface " ^ iface));
  }

let mode = Sysbuild.Stubbed stubset
