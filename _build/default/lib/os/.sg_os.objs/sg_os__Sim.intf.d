lib/os/sim.mli: Comp Format Sg_kernel Sg_util
