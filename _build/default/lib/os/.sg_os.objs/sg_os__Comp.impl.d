lib/os/comp.ml: Format List Printf String
