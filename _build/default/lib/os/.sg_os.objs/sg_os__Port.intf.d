lib/os/port.mli: Comp Sim
