lib/os/port.ml: Comp Printf Sim
