lib/os/sim.ml: Captbl Clock Comp Cost Effect Format Fun Hashtbl Kernel Ktcb List Printexc Printf Sg_kernel Sg_util Sys Usage
