lib/os/comp.mli: Format
