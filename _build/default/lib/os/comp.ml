type cid = int

type value =
  | VUnit
  | VBool of bool
  | VInt of int
  | VStr of string
  | VList of value list

type errno = EINVAL | ENOENT | EAGAIN | ENOMEM | EPERM | EFAULT
type 'a outcome = ('a, errno) result

exception Crash of { cid : cid; detector : string }
exception Diverted of { cid : cid }
exception Sys_segfault of { cid : cid }
exception Sys_hang of { cid : cid }
exception Sys_propagated of { cid : cid }

let errno_to_string = function
  | EINVAL -> "EINVAL"
  | ENOENT -> "ENOENT"
  | EAGAIN -> "EAGAIN"
  | ENOMEM -> "ENOMEM"
  | EPERM -> "EPERM"
  | EFAULT -> "EFAULT"

let pp_errno ppf e = Format.pp_print_string ppf (errno_to_string e)

let rec value_to_string = function
  | VUnit -> "()"
  | VBool b -> string_of_bool b
  | VInt i -> string_of_int i
  | VStr s -> Printf.sprintf "%S" s
  | VList vs -> "[" ^ String.concat "; " (List.map value_to_string vs) ^ "]"

let pp_value ppf v = Format.pp_print_string ppf (value_to_string v)

let int_exn = function
  | VInt i -> i
  | v -> invalid_arg ("Comp.int_exn: " ^ value_to_string v)

let str_exn = function
  | VStr s -> s
  | v -> invalid_arg ("Comp.str_exn: " ^ value_to_string v)

let bool_exn = function
  | VBool b -> b
  | v -> invalid_arg ("Comp.bool_exn: " ^ value_to_string v)

let unit_exn = function
  | VUnit -> ()
  | v -> invalid_arg ("Comp.unit_exn: " ^ value_to_string v)

let list_exn = function
  | VList vs -> vs
  | v -> invalid_arg ("Comp.list_exn: " ^ value_to_string v)
