type t = {
  server : Comp.cid;
  call : Sim.t -> string -> Comp.value list -> Comp.value Comp.outcome;
}

let raw server =
  { server; call = (fun sim fn args -> Sim.invoke sim ~server fn args) }

let call t sim fn args = t.call sim fn args

let call_exn t sim fn args =
  match t.call sim fn args with
  | Ok v -> v
  | Error e ->
      failwith
        (Printf.sprintf "invocation %s on component %d failed: %s" fn t.server
           (Comp.errno_to_string e))
