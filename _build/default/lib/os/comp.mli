(** Values, error codes and fault exceptions shared across the OS layer.

    Component interfaces exchange only these flat values — mirroring the
    hardware isolation of COMPOSITE, where components cannot share data
    structures or pass addresses directly (paper §II-B). Faults can
    therefore propagate between components only through interface
    values. *)

type cid = int
(** Component identifier. *)

type value =
  | VUnit
  | VBool of bool
  | VInt of int
  | VStr of string
  | VList of value list
      (** only used by reflection interfaces, which enumerate state *)

type errno = EINVAL | ENOENT | EAGAIN | ENOMEM | EPERM | EFAULT

type 'a outcome = ('a, errno) result

exception Crash of { cid : cid; detector : string }
(** A detected fail-stop fault in component [cid]: the hardware exception
    (or internal assertion named by [detector]) fired while a thread
    executed inside it. Client stubs catch this to drive recovery. *)

exception Diverted of { cid : cid }
(** Raised at the suspension point of a thread that was blocked inside a
    component when that component was micro-rebooted: the thread is
    diverted back to the invoking client stub (paper §II-C). *)

exception Sys_segfault of { cid : cid }
(** Unrecoverable: the fault smashed the return path and the system
    exited with a segmentation fault (paper Table II column 4). *)

exception Sys_hang of { cid : cid }
(** Unrecoverable latent fault: the component entered an infinite loop
    (paper Table II "other reason"). *)

exception Sys_propagated of { cid : cid }
(** Unrecoverable: corrupted data escaped through the interface to a
    client before detection (paper Table II column 5). *)

val errno_to_string : errno -> string
val pp_errno : Format.formatter -> errno -> unit
val value_to_string : value -> string
val pp_value : Format.formatter -> value -> unit

val int_exn : value -> int
(** Raises [Invalid_argument] on a non-integer value; interface marshaling
    errors are programming errors, not recoverable conditions. *)

val str_exn : value -> string
val bool_exn : value -> bool
val unit_exn : value -> unit
val list_exn : value -> value list
