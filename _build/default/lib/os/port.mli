(** Client-side invocation ports.

    A port is the indirection through which a client reaches a server
    interface. In the *base* system a port is the raw kernel invocation
    path; with C³ or SuperGlue, a port is a recovery stub that interposes
    on every call (Fig 1(b) of the paper). Workloads and components are
    written against ports so the identical code runs in all three system
    configurations. *)

type t = {
  server : Comp.cid;
  call : Sim.t -> string -> Comp.value list -> Comp.value Comp.outcome;
}

val raw : Comp.cid -> t
(** Direct invocation with no stub interposition (the base COMPOSITE
    configuration): a server crash propagates to the caller and brings
    the workload down. *)

val call : t -> Sim.t -> string -> Comp.value list -> Comp.value Comp.outcome

val call_exn : t -> Sim.t -> string -> Comp.value list -> Comp.value
(** Like {!call} but raises [Failure] on an [Error] outcome; for workload
    code where an interface error is a test failure. *)
