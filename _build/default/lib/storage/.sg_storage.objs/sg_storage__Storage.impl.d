lib/storage/storage.ml: Hashtbl List Option Sg_cbuf Sg_kernel Sg_os
