lib/storage/storage.mli: Sg_cbuf Sg_os
