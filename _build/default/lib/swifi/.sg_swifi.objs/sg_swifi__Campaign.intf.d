lib/swifi/campaign.mli: Format Sg_components
