lib/swifi/injector.mli: Sg_kernel Sg_os Sg_util
