lib/swifi/campaign.ml: Format Injector Sg_components Sg_os Sg_util
