lib/swifi/injector.ml: Hashtbl List Option Sg_kernel Sg_os Sg_util
