module Sim = Sg_os.Sim
module Sysbuild = Sg_components.Sysbuild
module Workloads = Sg_components.Workloads
module Cstub = Sg_c3.Cstub
module Tracker = Sg_c3.Tracker
module Stats = Sg_util.Stats
module Table = Sg_util.Table
module Clock = Sg_kernel.Clock
module Lock = Sg_components.Lock
module Event = Sg_components.Event
module Timer = Sg_components.Timer
module Mm = Sg_components.Mm
module Ramfs = Sg_components.Ramfs
module Sched = Sg_components.Sched

(* ---------- Fig 6(a): infrastructure (tracking) overhead ---------- *)

type overhead_row = {
  o_iface : string;
  o_base_us : float;
  o_c3 : Stats.summary;
  o_sg : Stats.summary;
}

(* The timer workload of §V-B spends its time in 200 µs sleeps whose
   wakeups are absolute deadlines, which absorb the (relatively tiny)
   tracking time; this CPU-bound variant with a sub-microsecond period
   makes the per-operation tracking overhead observable, as in the
   paper's timer micro-benchmark. *)
let timer_cpu_workload sys ~iters =
  let sim = sys.Sysbuild.sys_sim in
  let app = sys.Sysbuild.sys_app1 in
  let port = sys.Sysbuild.sys_port ~client:app ~iface:"timer" in
  let ticks = ref 0 in
  let _ =
    Sim.spawn sim ~prio:5 ~name:"timer-cpu" ~home:app (fun sim ->
        let id = Timer.create port sim ~period_ns:500 in
        for _ = 1 to iters do
          ignore (Timer.wait port sim id);
          incr ticks
        done;
        Timer.free port sim id)
  in
  fun () -> if !ticks = iters then [] else [ "timer-cpu: incomplete" ]

let per_iteration_us ~mode ~iface ~iters ~seed =
  let sys = Sysbuild.build ~seed mode in
  let check =
    if iface = "timer" then timer_cpu_workload sys ~iters
    else Workloads.setup sys ~iface ~iters
  in
  (match Sim.run sys.Sysbuild.sys_sim with
  | Sim.Completed -> ()
  | r ->
      failwith
        (Format.asprintf "fig6a %s/%s: %a" sys.Sysbuild.sys_mode iface
           Sim.pp_run_result r));
  (match check () with
  | [] -> ()
  | v -> failwith ("fig6a: " ^ String.concat "; " v));
  Clock.us_of_ns (Sim.now sys.Sysbuild.sys_sim) /. float_of_int iters

let infrastructure ?(reps = 5) ?(iters = 60) () =
  List.map
    (fun iface ->
      let series mode =
        List.init reps (fun i ->
            per_iteration_us ~mode ~iface ~iters ~seed:(41 + i))
      in
      let base = series Sysbuild.Base in
      let c3 = series (Sysbuild.Stubbed Sysbuild.c3_stubset) in
      let sg = series Superglue.Stubset.mode in
      let overhead s = List.map2 (fun m b -> m -. b) s base in
      {
        o_iface = iface;
        o_base_us = Stats.mean base;
        o_c3 = Stats.summarize (overhead c3);
        o_sg = Stats.summarize (overhead sg);
      })
    Workloads.all_ifaces

(* ---------- Fig 6(b): per-descriptor recovery overhead ---------- *)

type recovery_row = { v_iface : string; v_c3 : Stats.summary; v_sg : Stats.summary }

(* Populate an interface with a few descriptors in interesting states,
   from a measurement fiber. *)
let make_descriptors sys sim iface =
  let app1 = sys.Sysbuild.sys_app1 and app2 = sys.Sysbuild.sys_app2 in
  let port = sys.Sysbuild.sys_port ~client:app1 ~iface in
  match iface with
  | "sched" ->
      let tid = Sim.current_tid sim in
      Sched.create port sim ~tid ~prio:5
  | "lock" ->
      let a = Lock.alloc port sim in
      Lock.take port sim a;
      ignore (Lock.alloc port sim)
  | "timer" -> ignore (Timer.create port sim ~period_ns:500_000)
  | "evt" ->
      (* the full mechanism set: the child is created by a different
         component, so its recovery crosses the storage registry and
         upcalls into the creator (G0/U0/D1) *)
      let parent = Event.split port sim ~compid:app1 ~parent:0 ~grp:1 in
      let port2 = sys.Sysbuild.sys_port ~client:app2 ~iface in
      let _ =
        Sim.spawn sim ~name:"fig6b-evt-child" ~home:app2 (fun sim ->
            ignore (Event.split port2 sim ~compid:app2 ~parent ~grp:1))
      in
      Sim.yield sim
  | "fs" ->
      let fd = Ramfs.tsplit port sim ~parent:Ramfs.root_fd ~name:"r.dat" in
      ignore (Ramfs.twrite port sim ~fd ~data:"0123456789")
  | "mm" ->
      Mm.get_page port sim ~vaddr:0x9000_0000;
      Mm.alias_page port sim ~svaddr:0x9000_0000 ~dst:app2 ~dvaddr:0x9100_0000
  | _ -> invalid_arg iface

let recovery_us_per_descriptor ~mode ~iface ~seed =
  let sys = Sysbuild.build ~seed mode in
  let sim = sys.Sysbuild.sys_sim in
  let samples = ref [] in
  let _ =
    Sim.spawn sim ~name:"fig6b" ~home:sys.Sysbuild.sys_app1 (fun sim ->
        make_descriptors sys sim iface;
        let target = Sysbuild.cid_of_iface sys iface in
        Sim.mark_failed sim target ~detector:"fig6b";
        Cstub.ensure_alive sim target;
        List.iter
          (fun client ->
            match sys.Sysbuild.sys_stub ~client ~iface with
            | None -> ()
            | Some stub ->
                List.iter
                  (fun d ->
                    let t0 = Sim.now sim in
                    Cstub.recover_desc sim stub d;
                    samples := Clock.us_of_ns (Sim.now sim - t0) :: !samples)
                  (Tracker.live (Cstub.tracker stub)))
          [ sys.Sysbuild.sys_app1; sys.Sysbuild.sys_app2 ])
  in
  (match Sim.run sim with
  | Sim.Completed -> ()
  | r -> failwith (Format.asprintf "fig6b %s: %a" iface Sim.pp_run_result r));
  !samples

let recovery ?(reps = 5) () =
  List.map
    (fun iface ->
      let series mode =
        List.concat_map
          (fun i -> recovery_us_per_descriptor ~mode ~iface ~seed:(11 + i))
          (List.init reps (fun i -> i))
      in
      {
        v_iface = iface;
        v_c3 = Stats.summarize (series (Sysbuild.Stubbed Sysbuild.c3_stubset));
        v_sg = Stats.summarize (series Superglue.Stubset.mode);
      })
    Workloads.all_ifaces

(* ---------- Fig 6(c): lines of code ---------- *)

type loc_row = { l_iface : string; l_idl : int; l_generated : int; l_c3 : int }

let rec find_repo_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_repo_root parent

let c3_stub_file iface =
  let base =
    match iface with
    | "evt" -> "c3_stub_event.ml"
    | other -> Printf.sprintf "c3_stub_%s.ml" other
  in
  match find_repo_root (Sys.getcwd ()) with
  | None -> None
  | Some root ->
      let path = Filename.concat root (Filename.concat "lib/components" base) in
      if Sys.file_exists path then Some path else None

let file_loc path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      Superglue.Codegen.loc (really_input_string ic (in_channel_length ic)))

let loc () =
  List.map
    (fun iface ->
      let a = Superglue.Compiler.builtin iface in
      {
        l_iface = iface;
        l_idl = Superglue.Codegen.loc a.Superglue.Compiler.a_source;
        l_generated = Superglue.Codegen.loc (Superglue.Codegen.emit a);
        l_c3 =
          (match c3_stub_file iface with
          | Some path -> file_loc path
          | None -> 0);
      })
    Workloads.all_ifaces

(* ---------- rendering ---------- *)

let f2 = Printf.sprintf "%.2f"

let print_all ?reps () =
  let rows_a = infrastructure ?reps () in
  print_endline
    "Fig 6(a) - infrastructure overhead of descriptor state tracking\n\
     (microseconds added per workload iteration; mean over seeds)";
  Table.print
    ~header:[ "Component"; "base us/iter"; "C3 +us"; "C3 sd"; "SuperGlue +us"; "SG sd" ]
    (List.map
       (fun r ->
         [
           r.o_iface;
           f2 r.o_base_us;
           f2 r.o_c3.Stats.mean;
           f2 r.o_c3.Stats.stdev;
           f2 r.o_sg.Stats.mean;
           f2 r.o_sg.Stats.stdev;
         ])
       rows_a);
  print_newline ();
  let rows_b = recovery ?reps () in
  print_endline
    "Fig 6(b) - per-descriptor recovery overhead\n\
     (microseconds from fault state to expected state)";
  Table.print
    ~header:[ "Component"; "C3 us"; "C3 sd"; "SuperGlue us"; "SG sd"; "n" ]
    (List.map
       (fun r ->
         [
           r.v_iface;
           f2 r.v_c3.Stats.mean;
           f2 r.v_c3.Stats.stdev;
           f2 r.v_sg.Stats.mean;
           f2 r.v_sg.Stats.stdev;
           string_of_int r.v_sg.Stats.n;
         ])
       rows_b);
  print_newline ();
  let rows_c = loc () in
  print_endline
    "Fig 6(c) - recovery code size (non-blank LOC)\n\
     (declarative IDL vs generated stub code vs hand-written C3 stubs)";
  Table.print
    ~header:[ "Component"; "SuperGlue IDL"; "generated"; "hand-written C3" ]
    (List.map
       (fun r ->
         [
           r.l_iface;
           string_of_int r.l_idl;
           string_of_int r.l_generated;
           string_of_int r.l_c3;
         ])
       rows_c);
  let idl_avg =
    List.fold_left (fun acc r -> acc + r.l_idl) 0 rows_c / List.length rows_c
  in
  Printf.printf
    "average IDL file: %d LOC (paper: %d); the compiler expands each into\n\
     an order of magnitude more recovery code, replacing the error-prone\n\
     hand-written stubs.\n"
    idl_avg Paper.avg_idl_loc
