(** Drivers regenerating Fig 6 of the paper.

    (a) per-operation infrastructure overhead of descriptor state
    tracking, C³ vs SuperGlue, per system component (µs, mean ± stdev
    over seeds);

    (b) per-descriptor recovery overhead: the virtual time to bring one
    descriptor from the fault state back to its expected state (µs,
    mean ± stdev over the interface's descriptors and seeds);

    (c) lines of code: the declarative IDL specification vs the recovery
    code the SuperGlue compiler generates from it vs the hand-written C³
    stub for the same interface. *)

type overhead_row = {
  o_iface : string;
  o_base_us : float;  (** base per-iteration execution time *)
  o_c3 : Sg_util.Stats.summary;  (** added µs per workload iteration *)
  o_sg : Sg_util.Stats.summary;
}

val infrastructure : ?reps:int -> ?iters:int -> unit -> overhead_row list

type recovery_row = {
  v_iface : string;
  v_c3 : Sg_util.Stats.summary;  (** µs per recovered descriptor *)
  v_sg : Sg_util.Stats.summary;
}

val recovery : ?reps:int -> unit -> recovery_row list

type loc_row = {
  l_iface : string;
  l_idl : int;  (** LOC of the .sgidl specification *)
  l_generated : int;  (** LOC the SuperGlue compiler emits *)
  l_c3 : int;  (** LOC of the hand-written C³ stub module (0 if the
                   source tree is not reachable from the cwd) *)
}

val loc : unit -> loc_row list

val print_all : ?reps:int -> unit -> unit
(** Render the three panels as tables with the paper's headline
    observations. *)
