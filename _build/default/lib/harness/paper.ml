type table2_row = {
  p_iface : string;
  p_injected : int;
  p_recovered : int;
  p_segfault : int;
  p_propagated : int;
  p_other : int;
  p_undetected : int;
  p_activation_pct : float;
  p_success_pct : float;
}

let row iface injected recovered segfault propagated other undetected act succ =
  {
    p_iface = iface;
    p_injected = injected;
    p_recovered = recovered;
    p_segfault = segfault;
    p_propagated = propagated;
    p_other = other;
    p_undetected = undetected;
    p_activation_pct = act;
    p_success_pct = succ;
  }

(* Table II of the paper. *)
let table2 =
  [
    row "sched" 500 436 54 0 2 9 98.36 88.58;
    row "mm" 500 431 35 1 4 30 94.26 91.48;
    row "fs" 500 455 18 0 0 29 94.70 96.14;
    row "lock" 500 433 33 2 0 31 93.82 92.35;
    row "evt" 500 450 16 2 0 33 93.83 96.00;
    row "timer" 500 460 26 0 0 18 97.23 94.62;
  ]

let fig7_rps =
  [
    ("apache", 17600.0);
    ("base", 16200.0);
    ("c3", 14500.0);
    ("superglue", 14281.0);
    (* the in-text 13.6% slowdown under one crash per 10 s *)
    ("superglue+faults", 16200.0 *. (1.0 -. 0.136));
  ]

let fig6c_c3_fs_loc = 398
let avg_idl_loc = 37
let web_slowdown_pct = 11.84
let web_slowdown_faults_pct = 13.6
