(** The paper's published numbers (DSN'16), for side-by-side reporting
    in EXPERIMENTS.md and the benchmark output. *)

type table2_row = {
  p_iface : string;
  p_injected : int;
  p_recovered : int;
  p_segfault : int;
  p_propagated : int;
  p_other : int;
  p_undetected : int;
  p_activation_pct : float;
  p_success_pct : float;
}

val table2 : table2_row list
(** Table II, in the paper's order (Sched, MM, FS, Lock, Event, Timer). *)

val fig7_rps : (string * float) list
(** Fig 7 throughput: apache, base, c3, superglue, and the in-text
    superglue-with-faults slowdown converted to requests/second. *)

val fig6c_c3_fs_loc : int
(** The paper's example: the FS component's hand-written C³ stubs were
    ~398 LOC. *)

val avg_idl_loc : int
(** "The average SuperGlue IDL file ... is 37 lines of code". *)

val web_slowdown_pct : float
(** 11.84 *)

val web_slowdown_faults_pct : float
(** 13.6 *)
