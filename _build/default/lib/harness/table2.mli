(** Driver regenerating Table II: the SWIFI fault-injection campaign
    over the six system services, printed beside the paper's numbers. *)

val run :
  ?mode:Sg_components.Sysbuild.mode ->
  ?injections:int ->
  ?seed:int ->
  unit ->
  Sg_swifi.Campaign.row list
(** Default: the SuperGlue configuration, 500 injections per service. *)

val print : ?mode:Sg_components.Sysbuild.mode -> ?injections:int -> unit -> unit
