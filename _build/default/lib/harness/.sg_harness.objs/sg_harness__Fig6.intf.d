lib/harness/fig6.mli: Sg_util
