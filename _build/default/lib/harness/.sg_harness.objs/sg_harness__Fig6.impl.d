lib/harness/fig6.ml: Filename Format Fun List Paper Printf Sg_c3 Sg_components Sg_kernel Sg_os Sg_util String Superglue Sys
