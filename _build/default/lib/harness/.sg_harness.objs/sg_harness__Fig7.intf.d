lib/harness/fig7.mli: Sg_util
