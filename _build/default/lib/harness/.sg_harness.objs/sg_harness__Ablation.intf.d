lib/harness/ablation.mli:
