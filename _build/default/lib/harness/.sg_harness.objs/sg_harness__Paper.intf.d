lib/harness/paper.mli:
