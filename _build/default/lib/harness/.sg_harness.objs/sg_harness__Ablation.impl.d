lib/harness/ablation.ml: Format List Option Printf Sg_c3 Sg_components Sg_kernel Sg_os Sg_util Superglue
