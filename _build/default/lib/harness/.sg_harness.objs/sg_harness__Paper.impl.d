lib/harness/paper.ml:
