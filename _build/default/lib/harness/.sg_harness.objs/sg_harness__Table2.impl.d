lib/harness/table2.ml: List Paper Printf Sg_components Sg_swifi Sg_util Superglue
