lib/harness/table2.mli: Sg_components Sg_swifi
