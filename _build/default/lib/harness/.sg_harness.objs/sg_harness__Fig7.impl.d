lib/harness/fig7.ml: List Printf Sg_components Sg_os Sg_util Sg_web Superglue
