(** Client-side descriptor tracking.

    The interface stub on the client side of a component invocation
    tracks every descriptor the client obtained from the server: its
    state-machine state, the bounded per-descriptor data [D_dr] needed to
    recreate it (paper §III-A/B — e.g. a file's path and offset), its
    parent dependency [P_dr], and the server epoch it was last known
    consistent with. This bounded encoding replaces an unbounded
    operation log (paper §II-C).

    Because a recovered server may hand out a different concrete id when
    a descriptor is recreated, the tracker separates the client-visible
    id (stable) from the server id (remapped on recovery). *)

type parent =
  | Local of int  (** parent descriptor in the same client ([Parent]) *)
  | Cross of { client : Sg_os.Comp.cid; id : int }
      (** parent descriptor created by another component ([XCParent]) *)

type desc = {
  d_id : int;  (** client-visible id, stable across recoveries *)
  mutable d_server_id : int;  (** id understood by the (current) server *)
  mutable d_state : string;  (** state-machine state, ["s0"] or ["after:<fn>"] *)
  mutable d_meta : (string * Sg_os.Comp.value) list;  (** tracked data D_dr *)
  mutable d_parent : parent option;
  mutable d_epoch : int;  (** server epoch at last consistency point *)
  mutable d_live : bool;  (** false once terminated (Y_dr may keep meta) *)
}

type flavor = C3 | Superglue
(** Which stub implementation is charged for tracking actions: the
    hand-specialized C³ code or the SuperGlue interpreted stub (slightly
    dearer per action, paper Fig 6(a)). *)

type t

val create : flavor:flavor -> unit -> t
val flavor : t -> flavor

val track_charge : t -> Sg_os.Sim.t -> unit
(** Charge one tracking action at this stub's flavor cost. *)

val lookup_charge : t -> Sg_os.Sim.t -> unit

val add :
  t -> Sg_os.Sim.t -> ?server_id:int -> ?parent:parent ->
  state:string -> meta:(string * Sg_os.Comp.value) list -> epoch:int -> int ->
  desc
(** [add t sim ~state ~meta ~epoch id] tracks a freshly created
    descriptor (charges one tracking action). If a dead record with the
    same id exists it is replaced. *)

val fresh : t -> int
(** Allocate a stub-virtual descriptor id. A recovered server hands out
    concrete ids from a reset namespace, so a *local* descriptor's
    client-visible id is virtualized by the stub: the client holds the
    stub's id forever and the stub translates it to the server's current
    id on every invocation. *)

val rekey : t -> from:int -> to_:int -> desc option
(** Move a just-added record to its virtual key: the new record carries
    [d_id = to_] and [d_server_id = from]. *)

val find : t -> int -> desc option
val find_exn : t -> int -> desc
val remove : t -> int -> unit
val set_state : t -> Sg_os.Sim.t -> desc -> string -> unit
val set_meta : t -> Sg_os.Sim.t -> desc -> string -> Sg_os.Comp.value -> unit
val meta : desc -> string -> Sg_os.Comp.value option
val meta_int : desc -> string -> int option
val meta_str : desc -> string -> string option
val children : t -> int -> desc list
(** Live descriptors whose parent is [Local id]. *)

val live : t -> desc list
(** All live descriptors, in increasing id order. *)

val count : t -> int
