module Sim = Sg_os.Sim
module Comp = Sg_os.Comp
module Storage = Sg_storage.Storage

type config = {
  ss_iface : string;
  ss_global : bool;
  ss_desc_arg : string -> int option;
  ss_parent_arg : string -> int option;
  ss_create_fns : string list;
  ss_create_meta :
    string -> Comp.value list -> Comp.value -> (string * Comp.value) list;
  ss_boot_init : Sim.t -> Comp.cid -> unit;
}

let no_boot_init _ _ = ()

let replace_nth l n v = List.mapi (fun i x -> if i = n then v else x) l

let wrap ~storage cfg spec =
  (* Stale-id translation cache: clients keep using a recreated global
     descriptor's pre-fault id forever; after the first G0 recovery the
     stub translates it directly instead of paying the storage lookup
     and creator upcall on every invocation. The cache is stub state —
     it lives in the interface, outside the micro-rebooted image. *)
  let xlate : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* repeated reboots chain translations (old -> mid -> new) *)
  let rec chase id hops =
    if hops > 8 then id
    else
      match Hashtbl.find_opt xlate id with
      | Some id' when id' <> id -> chase id' (hops + 1)
      | Some _ | None -> id
  in
  let translate fn args =
    if Hashtbl.length xlate = 0 then args
    else
      List.fold_left
        (fun args sel ->
          match sel fn with
          | None -> args
          | Some idx -> (
              match List.nth_opt args idx with
              | Some (Comp.VInt id) ->
                  let id' = chase id 0 in
                  if id' <> id then replace_nth args idx (Comp.VInt id')
                  else args
              | Some _ | None -> args))
        args
        [ cfg.ss_desc_arg; cfg.ss_parent_arg ]
  in
  (* [recovering] guards the EINVAL path against re-entry; the replay
     itself goes through this wrapper again so that a creation replayed
     during recovery is registered with the storage component like any
     other (otherwise its id would be unrecoverable after the next
     fault). *)
  let rec dispatch ~recovering sim cid fn orig_args =
    let args = if recovering then orig_args else translate fn orig_args in
    match spec.Sim.sc_dispatch sim cid fn args with
    | Ok ret as r ->
        if cfg.ss_global && List.mem fn cfg.ss_create_fns then begin
          (* G0 bookkeeping: remember who created this descriptor *)
          let id =
            match ret with
            | Comp.VInt id -> id
            | _ -> invalid_arg "server stub: creation must return an id"
          in
          Storage.register_desc storage sim ~space:cfg.ss_iface ~id
            ~creator:(Sim.client_cid sim)
            ~meta:(cfg.ss_create_meta fn args ret)
        end;
        r
    | Error Comp.EINVAL when cfg.ss_global && not recovering -> (
        (* G0 recovery: a descriptor-bearing argument (the descriptor
           itself, or a creation's parent) may predate the micro-reboot *)
        let candidates =
          List.filter_map
            (fun sel -> sel fn)
            [ cfg.ss_desc_arg; cfg.ss_parent_arg ]
        in
        let try_recover idx =
          (* the storage registry and the creator's stub know descriptors
             by their original (client-visible) ids, so recovery always
             starts from the untranslated argument *)
          match List.nth_opt orig_args idx with
          | Some (Comp.VInt old_id) -> (
              match
                Storage.lookup_desc storage sim ~space:cfg.ss_iface ~id:old_id
              with
              | None -> None
              | Some (creator, _meta) -> (
                  (* U0: upcall into the creating component's client
                     stub to rebuild the descriptor, then replay *)
                  match
                    Sim.upcall sim ~client:creator
                      ("sg_recover:" ^ cfg.ss_iface)
                      [ Comp.VInt old_id ]
                  with
                  | Ok (Comp.VInt new_id) ->
                      if new_id <> old_id then
                        Hashtbl.replace xlate old_id new_id
                      else Hashtbl.remove xlate old_id;
                      Some
                        (dispatch ~recovering:true sim cid fn
                           (replace_nth (translate fn orig_args) idx
                              (Comp.VInt new_id)))
                  | Ok _ | Error _ -> None))
          | Some _ | None -> None
        in
        match List.find_map try_recover candidates with
        | Some result -> result
        | None ->
            if Sys.getenv_opt "SG_DEBUG_G0" <> None then
              Printf.eprintf "G0 miss: %s.%s args=%s candidates=%s\n" cfg.ss_iface fn
                (String.concat "," (List.map Comp.value_to_string args))
                (String.concat "," (List.map string_of_int candidates));
            Error Comp.EINVAL)
    | (Error _ as r) -> r
  in
  let boot_init sim cid =
    spec.Sim.sc_boot_init sim cid;
    (* global descriptor namespaces must not re-issue ids that still
       name pre-fault descriptors held by clients: re-seed the counter
       past everything the storage registry remembers (G0) *)
    if cfg.ss_global then begin
      let ids = Storage.descs_in storage ~space:cfg.ss_iface in
      let max_id = List.fold_left max 0 ids in
      ignore
        (spec.Sim.sc_dispatch sim cid "__sg_seed_ids"
           [ Comp.VInt (max_id + 1) ])
    end;
    cfg.ss_boot_init sim cid
  in
  {
    spec with
    Sim.sc_dispatch = (fun sim cid fn args -> dispatch ~recovering:false sim cid fn args);
    sc_boot_init = boot_init;
  }
