lib/c3/tracker.mli: Sg_os
