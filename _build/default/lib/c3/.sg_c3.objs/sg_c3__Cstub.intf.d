lib/c3/cstub.mli: Sg_os Tracker
