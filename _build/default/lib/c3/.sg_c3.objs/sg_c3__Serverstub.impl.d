lib/c3/serverstub.ml: Hashtbl List Printf Sg_os Sg_storage String Sys
