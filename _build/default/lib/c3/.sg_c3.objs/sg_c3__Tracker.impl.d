lib/c3/tracker.ml: Hashtbl List Option Printf Sg_kernel Sg_os
