lib/c3/cstub.ml: List Printf Sg_os Tracker
