lib/c3/serverstub.mli: Sg_os Sg_storage
