(** The server-side interface stub.

    Wraps a component's spec with the recovery logic that must live on
    the server side of the interface (paper §III-C):

    - {b G0} — for globally addressable descriptors, a successful call to
      a creation function registers (descriptor → creator) with the
      storage component; after a micro-reboot, an invocation carrying a
      descriptor the recovered server does not know returns EINVAL — the
      stub catches it, asks the storage component who created the
      descriptor, upcalls into that client's stub to recreate it (U0),
      and replays the invocation with the recovered descriptor;
    - {b T0} — the post-reboot constructor performs eager recovery,
      waking every thread the faulty component had blocked, via the
      wakeup function of the recovering server's own server. *)

type config = {
  ss_iface : string;  (** storage space; matches the client stubs' *)
  ss_global : bool;  (** G_dr: descriptors shared across clients *)
  ss_desc_arg : string -> int option;
  ss_parent_arg : string -> int option;
      (** a parent-descriptor argument is as globally addressable as the
          descriptor itself: an EINVAL caused by a stale parent id (e.g.
          a replayed cross-component creation) is recovered through the
          same storage-lookup + creator-upcall path *)
  ss_create_fns : string list;
  ss_create_meta :
    string -> Sg_os.Comp.value list -> Sg_os.Comp.value ->
    (string * Sg_os.Comp.value) list;
      (** meta recorded with the storage registration, from
          (function, args, ret) *)
  ss_boot_init : Sg_os.Sim.t -> Sg_os.Comp.cid -> unit;  (** T0 *)
}

val wrap : storage:Sg_storage.Storage.t -> config -> Sg_os.Sim.spec -> Sg_os.Sim.spec
(** [wrap ~storage cfg spec] interposes the server stub on [spec]'s
    dispatch and appends [ss_boot_init] to its post-reboot constructor. *)

val no_boot_init : Sg_os.Sim.t -> Sg_os.Comp.cid -> unit
(** Convenience for components with no eager recovery ([¬B_r]). *)
