module Sim = Sg_os.Sim
module Cost = Sg_kernel.Cost

type parent = Local of int | Cross of { client : Sg_os.Comp.cid; id : int }

type desc = {
  d_id : int;
  mutable d_server_id : int;
  mutable d_state : string;
  mutable d_meta : (string * Sg_os.Comp.value) list;
  mutable d_parent : parent option;
  mutable d_epoch : int;
  mutable d_live : bool;
}

type flavor = C3 | Superglue

type t = {
  fl : flavor;
  descs : (int, desc) Hashtbl.t;
  mutable next_virtual : int;
}

(* virtual ids live far above any concrete server id so that the
   transient add-then-rekey window can never collide with a live
   virtual key *)
let virtual_base = 1 lsl 40

let create ~flavor () =
  { fl = flavor; descs = Hashtbl.create 32; next_virtual = virtual_base }

let fresh t =
  let v = t.next_virtual in
  t.next_virtual <- v + 1;
  v
let flavor t = t.fl

let track_charge t sim =
  let c = Sim.cost sim in
  Sim.charge sim
    (match t.fl with C3 -> c.Cost.c3_track_ns | Superglue -> c.Cost.sg_track_ns)

let lookup_charge _t sim = Sim.charge sim (Sim.cost sim).Cost.sg_lookup_ns

let add t sim ?server_id ?parent ~state ~meta ~epoch id =
  track_charge t sim;
  let d =
    {
      d_id = id;
      d_server_id = Option.value server_id ~default:id;
      d_state = state;
      d_meta = meta;
      d_parent = parent;
      d_epoch = epoch;
      d_live = true;
    }
  in
  Hashtbl.replace t.descs id d;
  d

let find t id = Hashtbl.find_opt t.descs id

let rekey t ~from ~to_ =
  match Hashtbl.find_opt t.descs from with
  | None -> None
  | Some d ->
      Hashtbl.remove t.descs from;
      let d' = { d with d_id = to_; d_server_id = from } in
      Hashtbl.replace t.descs to_ d';
      Some d'

let find_exn t id =
  match find t id with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Tracker: unknown descriptor %d" id)

let remove t id = Hashtbl.remove t.descs id

let set_state t sim d state =
  track_charge t sim;
  d.d_state <- state

let set_meta t sim d key v =
  track_charge t sim;
  d.d_meta <- (key, v) :: List.remove_assoc key d.d_meta

let meta d key = List.assoc_opt key d.d_meta

let meta_int d key =
  match meta d key with Some (Sg_os.Comp.VInt i) -> Some i | _ -> None

let meta_str d key =
  match meta d key with Some (Sg_os.Comp.VStr s) -> Some s | _ -> None

let children t id =
  Hashtbl.fold
    (fun _ d acc ->
      match d.d_parent with
      | Some (Local pid) when pid = id && d.d_live -> d :: acc
      | _ -> acc)
    t.descs []
  |> List.sort (fun a b -> compare a.d_id b.d_id)

let live t =
  Hashtbl.fold (fun _ d acc -> if d.d_live then d :: acc else acc) t.descs []
  |> List.sort (fun a b -> compare a.d_id b.d_id)

let count t = Hashtbl.length t.descs
