(** Per-thread register file.

    Each simulated thread carries the eight 32-bit registers of the
    platform; the SWIFI injector flips bits in them while the thread
    executes inside a target component (paper §V-A). *)

type t

val create : unit -> t
(** All registers zero. *)

val copy : t -> t
val get : t -> Reg.t -> Sg_util.Word32.t
val set : t -> Reg.t -> Sg_util.Word32.t -> unit

val flip_bit : t -> Reg.t -> int -> unit
(** [flip_bit t r i] models a single-event upset on bit [i] of [r]. *)

val apply_mask : t -> Reg.t -> Sg_util.Word32.t -> unit
(** XOR a full 32-bit fault mask into a register (paper's
    [0xFFFFFFFF]-mask formulation). *)

val randomize : Sg_util.Rng.t -> t -> unit
(** Fill all registers with pseudo-random live values; models the register
    contents of a thread mid-execution. *)

val pp : Format.formatter -> t -> unit
