type t = EAX | EBX | ECX | EDX | ESI | EDI | ESP | EBP

let all = [| EAX; EBX; ECX; EDX; ESI; EDI; ESP; EBP |]
let general = [| EAX; EBX; ECX; EDX; ESI; EDI |]
let is_stack = function ESP | EBP -> true | EAX | EBX | ECX | EDX | ESI | EDI -> false

let to_string = function
  | EAX -> "EAX"
  | EBX -> "EBX"
  | ECX -> "ECX"
  | EDX -> "EDX"
  | ESI -> "ESI"
  | EDI -> "EDI"
  | ESP -> "ESP"
  | EBP -> "EBP"

let of_string = function
  | "EAX" -> Some EAX
  | "EBX" -> Some EBX
  | "ECX" -> Some ECX
  | "EDX" -> Some EDX
  | "ESI" -> Some ESI
  | "EDI" -> Some EDI
  | "ESP" -> Some ESP
  | "EBP" -> Some EBP
  | _ -> None

let compare = Stdlib.compare
let equal = ( = )
let pp ppf r = Format.pp_print_string ppf (to_string r)
