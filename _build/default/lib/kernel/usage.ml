type sink = Checked | Returned | Loop_bound | Scratch

type use =
  | Write
  | Read_pointer of { bound_bits : int; escapes : bool }
  | Read_stackptr of { red_bits : int }
  | Read_data of sink

type event = { at : int; reg : Reg.t; use : use }
type t = { duration_ns : int; events : event array }

let make ~duration_ns events =
  List.iter
    (fun e ->
      if e.at < 0 || e.at > duration_ns then
        invalid_arg "Usage.make: event offset outside operation window")
    events;
  let events = Array.of_list events in
  Array.sort (fun a b -> compare a.at b.at) events;
  { duration_ns; events }

let duration_ns t = t.duration_ns

type verdict =
  | Undetected
  | Failstop of string
  | Segfault
  | Propagated
  | Hang

(* Consequence of a single-event upset, decided by the next access to the
   flipped register (see the .mli for the hardware rationale). *)
let classify t ~reg ~bit ~at =
  let next =
    Array.fold_left
      (fun acc e ->
        match acc with
        | Some _ -> acc
        | None -> if e.at >= at && Reg.equal e.reg reg then Some e else None)
      None t.events
  in
  match next with
  | None -> Undetected
  | Some { use = Write; _ } -> Undetected
  | Some { use = Read_pointer { bound_bits; escapes }; _ } ->
      if bit >= bound_bits then Failstop "pagefault"
      else if escapes then Propagated
      else Failstop "assert"
  | Some { use = Read_stackptr { red_bits }; _ } ->
      if bit < red_bits then Segfault else Failstop "pagefault"
  | Some { use = Read_data sink; _ } -> (
      match sink with
      | Checked -> Failstop "assert"
      | Returned -> Propagated
      | Loop_bound -> if bit >= 20 then Hang else if bit >= 4 then Failstop "assert" else Undetected
      | Scratch -> Undetected)

let verdict_to_string = function
  | Undetected -> "undetected"
  | Failstop d -> "failstop:" ^ d
  | Segfault -> "segfault"
  | Propagated -> "propagated"
  | Hang -> "hang"

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_to_string v)

let window ?(start = 0) ~duration_ns ~per_reg ~stride () =
  if stride <= 0 then invalid_arg "Usage.window: stride must be positive";
  let rec go at acc =
    if at > duration_ns then acc
    else
      let here = List.map (fun (reg, use) -> { at; reg; use }) per_reg in
      go (at + stride) (List.rev_append here acc)
  in
  List.rev (go start [])
