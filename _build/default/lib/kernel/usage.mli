(** Register-usage schedules: the substrate of the SWIFI outcome model.

    The paper injects single-bit flips into live registers of a thread
    executing inside a target component and observes fail-stop behaviour
    (§II-A, §V-A). We model each interface operation as a schedule of
    register accesses over its execution window. A flip's consequence is
    decided by the *next* access to the flipped register, exactly as on
    real hardware:

    - next access writes the register: the upset is overwritten, the
      fault is never activated (undetected);
    - read as a data pointer: a flipped high bit leaves the component's
      address space, so the hardware raises a page fault (fail-stop,
      detected); a flipped low bit stays inside the component and silently
      corrupts state, which is either caught by the service's internal
      integrity assertions (fail-stop, detected later) or — for operations
      that return derived data before any check — escapes to the client
      (propagated, unrecoverable);
    - read as the stack pointer or frame pointer: low-bit flips land
      inside the stack and smash the return path, crashing the system
      outside the recoverable region (segfault); high-bit flips page-fault
      immediately (fail-stop);
    - read as a loop bound: a flipped high bit produces an effectively
      infinite loop (latent fault / hang, cf. C'MON); low bits are either
      masked or caught by assertions;
    - registers never read again are dead: undetected.

    Every classification is a pure function of (register, bit, offset) and
    the schedule, so campaigns are reproducible. *)

type sink =
  | Checked  (** value feeds an integrity assertion before any use *)
  | Returned  (** value is returned to the client before any check *)
  | Loop_bound  (** value bounds an iteration *)
  | Scratch  (** value only affects a dead temporary *)

type use =
  | Write
  | Read_pointer of { bound_bits : int; escapes : bool }
      (** dereference; [bound_bits] = log2 of the component's mapped
          bytes, [escapes] = derived data returned before a check *)
  | Read_stackptr of { red_bits : int }
      (** ESP/EBP use; flips below [red_bits] corrupt the return path *)
  | Read_data of sink

type event = { at : int;  (** ns offset within the operation *) reg : Reg.t; use : use }

type t = private { duration_ns : int; events : event array }
(** [events] is sorted by [at]. *)

val make : duration_ns:int -> event list -> t
(** Sorts the events; raises [Invalid_argument] if any offset is negative
    or beyond the duration. *)

val duration_ns : t -> int

type verdict =
  | Undetected
  | Failstop of string  (** detected fail-stop; the payload names the
                            detector, e.g. "pagefault" or "assert" *)
  | Segfault
  | Propagated
  | Hang

val classify : t -> reg:Reg.t -> bit:int -> at:int -> verdict
(** Consequence of flipping [bit] of [reg] at offset [at] within an
    operation described by this schedule. *)

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_string : verdict -> string

(** Helpers for building realistic schedules concisely. *)

val window :
  ?start:int ->
  duration_ns:int ->
  per_reg:(Reg.t * use) list ->
  stride:int ->
  unit ->
  event list
(** [window ~duration_ns ~per_reg ~stride ()] repeats each (register, use)
    pair every [stride] ns across the window starting at [start]
    (default 0). *)
