type t = {
  clock : Clock.t;
  cost : Cost.t;
  threads : Ktcb.t;
  captbl : Captbl.t;
  frames : Frames.t;
}

let create ?(cost = Cost.default) () =
  {
    clock = Clock.create ();
    cost;
    threads = Ktcb.create ();
    captbl = Captbl.create ();
    frames = Frames.create ();
  }

let now t = Clock.now t.clock
let charge t ns = Clock.advance t.clock ns
