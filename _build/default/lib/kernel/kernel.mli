(** The trusted kernel aggregate: clock, cost model, thread table,
    capability tables and page tables.

    This mirrors the COMPOSITE kernel's small state footprint ("mainly
    just page tables, capability tables, and threads", paper §II-E).
    Everything here is outside the fault domain. *)

type t = {
  clock : Clock.t;
  cost : Cost.t;
  threads : Ktcb.t;
  captbl : Captbl.t;
  frames : Frames.t;
}

val create : ?cost:Cost.t -> unit -> t
val now : t -> int
val charge : t -> int -> unit
(** Advance virtual time by a cost in nanoseconds. *)
