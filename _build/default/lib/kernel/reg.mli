(** The eight 32-bit registers of the simulated platform.

    The paper injects faults into six general-purpose registers plus the
    two special registers ESP and EBP (§V-A). *)

type t = EAX | EBX | ECX | EDX | ESI | EDI | ESP | EBP

val all : t array
val general : t array
(** The six general-purpose registers. *)

val is_stack : t -> bool
(** [true] for ESP and EBP. *)

val to_string : t -> string
val of_string : string -> t option
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
