type tid = int

type tstate =
  | Runnable
  | Blocked of { in_component : int }
  | Sleeping of { until_ns : int; in_component : int }
  | Exited

type tcb = {
  tid : tid;
  name : string;
  mutable prio : int;
  mutable state : tstate;
  regs : Regfile.t;
  mutable stack : int list;
  mutable divert : int option;
}

type t = { mutable next_tid : int; table : (tid, tcb) Hashtbl.t }

let create () = { next_tid = 1; table = Hashtbl.create 32 }

let spawn t ~name ~prio ~home =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let tcb =
    {
      tid;
      name;
      prio;
      state = Runnable;
      regs = Regfile.create ();
      stack = [ home ];
      divert = None;
    }
  in
  Hashtbl.replace t.table tid tcb;
  tcb

let find t tid = Hashtbl.find_opt t.table tid

let find_exn t tid =
  match find t tid with
  | Some tcb -> tcb
  | None -> invalid_arg (Printf.sprintf "Ktcb.find_exn: unknown tid %d" tid)

let exit_thread t tid =
  match find t tid with Some tcb -> tcb.state <- Exited | None -> ()

let all t =
  Hashtbl.fold (fun _ tcb acc -> tcb :: acc) t.table []
  |> List.sort (fun a b -> compare a.tid b.tid)

let enter_component tcb cid = tcb.stack <- cid :: tcb.stack

let leave_component tcb =
  match tcb.stack with
  | [] -> invalid_arg "Ktcb.leave_component: empty invocation stack"
  | _ :: rest -> tcb.stack <- rest

let current_component tcb =
  match tcb.stack with [] -> None | cid :: _ -> Some cid

let executing_in t cid =
  List.filter
    (fun tcb -> tcb.state <> Exited && current_component tcb = Some cid)
    (all t)

let in_stack tcb cid = List.mem cid tcb.stack

let threads_inside t cid =
  List.filter (fun tcb -> tcb.state <> Exited && in_stack tcb cid) (all t)

let blocked_in t cid =
  List.filter
    (fun tcb ->
      match tcb.state with
      | Blocked { in_component } | Sleeping { in_component; _ } ->
          in_component = cid
      | Runnable | Exited -> false)
    (all t)

let runnable t =
  all t
  |> List.filter (fun tcb -> tcb.state = Runnable)
  |> List.stable_sort (fun a b -> compare a.prio b.prio)

let sleepers t =
  List.filter
    (fun tcb -> match tcb.state with Sleeping _ -> true | _ -> false)
    (all t)

let count t = Hashtbl.length t.table
