type t = { mutable now : int }

let create () = { now = 0 }
let now t = t.now

let advance t ns =
  if ns < 0 then invalid_arg "Clock.advance: negative duration";
  t.now <- t.now + ns

let advance_to t deadline = if deadline > t.now then t.now <- deadline
let ns_of_us us = int_of_float (us *. 1_000.0)
let us_of_ns ns = float_of_int ns /. 1_000.0
let s_of_ns ns = float_of_int ns /. 1e9
let ns_of_ms ms = int_of_float (ms *. 1_000_000.0)
