(** Capability tables mediating component invocations.

    In COMPOSITE every component invocation is authorized by
    capability-based access control in the kernel (§II-B). A client may
    only invoke servers it has been granted a capability for; the SWIFI
    campaign never corrupts this table (the kernel is trusted, §II-E). *)

type t

val create : unit -> t
val grant : t -> client:int -> server:int -> unit
val revoke : t -> client:int -> server:int -> unit
val allowed : t -> client:int -> server:int -> bool
val servers_of : t -> client:int -> int list
(** Servers the client holds invocation capabilities for, sorted. *)

val clients_of : t -> server:int -> int list
(** Reflection: which clients can invoke this server; used to drive eager
    recovery over all client interfaces. *)
