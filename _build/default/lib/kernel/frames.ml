type frame = int

type t = {
  total_frames : int;
  mutable next_frame : int;
  free : frame Stack.t;
  ptes : (int * int, frame) Hashtbl.t;  (** (cid, vaddr) -> frame *)
}

let create ?(total_frames = 65536) () =
  { total_frames; next_frame = 0; free = Stack.create (); ptes = Hashtbl.create 256 }

let alloc_frame t =
  match Stack.pop_opt t.free with
  | Some f -> Some f
  | None ->
      if t.next_frame >= t.total_frames then None
      else begin
        let f = t.next_frame in
        t.next_frame <- f + 1;
        Some f
      end

let free_frame t f = Stack.push f t.free

let map t ~cid ~vaddr frame =
  if Hashtbl.mem t.ptes (cid, vaddr) then Error `Exists
  else begin
    Hashtbl.replace t.ptes (cid, vaddr) frame;
    Ok ()
  end

let unmap t ~cid ~vaddr =
  match Hashtbl.find_opt t.ptes (cid, vaddr) with
  | None -> Error `Absent
  | Some frame ->
      Hashtbl.remove t.ptes (cid, vaddr);
      Ok frame

let lookup t ~cid ~vaddr = Hashtbl.find_opt t.ptes (cid, vaddr)

let mappings_of t ~cid =
  Hashtbl.fold
    (fun (c, vaddr) frame acc -> if c = cid then (vaddr, frame) :: acc else acc)
    t.ptes []
  |> List.sort compare

let mapping_count t = Hashtbl.length t.ptes

let frames_in_use t = t.next_frame - Stack.length t.free
