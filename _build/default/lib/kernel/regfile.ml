module Word32 = Sg_util.Word32
module Rng = Sg_util.Rng

type t = int array

let index = function
  | Reg.EAX -> 0
  | Reg.EBX -> 1
  | Reg.ECX -> 2
  | Reg.EDX -> 3
  | Reg.ESI -> 4
  | Reg.EDI -> 5
  | Reg.ESP -> 6
  | Reg.EBP -> 7

let create () = Array.make 8 0
let copy = Array.copy
let get t r = t.(index r)
let set t r v = t.(index r) <- Word32.mask v
let flip_bit t r i = t.(index r) <- Word32.flip_bit t.(index r) i
let apply_mask t r m = t.(index r) <- Word32.apply_mask t.(index r) m

let randomize rng t =
  Array.iter
    (fun r -> set t r (Int64.to_int (Rng.int64 rng) land 0xFFFFFFFF))
    Reg.all

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun r -> Format.fprintf ppf "%a = %s@," Reg.pp r (Word32.to_hex (get t r)))
    Reg.all;
  Format.fprintf ppf "@]"
