lib/kernel/frames.mli:
