lib/kernel/captbl.ml: Hashtbl List
