lib/kernel/frames.ml: Hashtbl List Stack
