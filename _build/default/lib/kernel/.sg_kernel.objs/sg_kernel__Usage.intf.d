lib/kernel/usage.mli: Format Reg
