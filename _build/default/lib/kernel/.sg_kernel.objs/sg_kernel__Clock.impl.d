lib/kernel/clock.ml:
