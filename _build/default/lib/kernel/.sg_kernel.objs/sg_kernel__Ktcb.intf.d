lib/kernel/ktcb.mli: Regfile
