lib/kernel/regfile.mli: Format Reg Sg_util
