lib/kernel/clock.mli:
