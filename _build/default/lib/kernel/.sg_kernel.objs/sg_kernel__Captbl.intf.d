lib/kernel/captbl.mli:
