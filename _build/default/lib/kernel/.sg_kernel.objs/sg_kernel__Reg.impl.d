lib/kernel/reg.ml: Format Stdlib
