lib/kernel/cost.ml:
