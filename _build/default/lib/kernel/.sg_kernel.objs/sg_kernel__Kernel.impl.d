lib/kernel/kernel.ml: Captbl Clock Cost Frames Ktcb
