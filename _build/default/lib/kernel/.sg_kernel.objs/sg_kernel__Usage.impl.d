lib/kernel/usage.ml: Array Format List Reg
