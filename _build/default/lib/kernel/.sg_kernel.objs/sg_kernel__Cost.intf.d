lib/kernel/cost.mli:
