lib/kernel/ktcb.ml: Hashtbl List Printf Regfile
