lib/kernel/kernel.mli: Captbl Clock Cost Frames Ktcb
