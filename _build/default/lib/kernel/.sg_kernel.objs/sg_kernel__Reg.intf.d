lib/kernel/reg.mli: Format
