lib/kernel/regfile.ml: Array Format Int64 Reg Sg_util
