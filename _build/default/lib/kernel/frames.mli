(** Physical frames and hardware page tables.

    The kernel holds the actual virtual-to-physical mappings; the memory
    manager component merely *tracks* them (alias trees). When the memory
    manager is micro-rebooted its trees are lost but the kernel mappings
    survive, and recovery reflects on this table to relearn what is
    installed (paper §II-D). *)

type frame = int

type t

val create : ?total_frames:int -> unit -> t
val alloc_frame : t -> frame option
(** [None] when physical memory is exhausted. *)

val free_frame : t -> frame -> unit

val map : t -> cid:int -> vaddr:int -> frame -> (unit, [ `Exists ]) result
(** Install a page-table entry for ([cid], [vaddr]). *)

val unmap : t -> cid:int -> vaddr:int -> (frame, [ `Absent ]) result
val lookup : t -> cid:int -> vaddr:int -> frame option

val mappings_of : t -> cid:int -> (int * frame) list
(** Reflection: all (vaddr, frame) entries of a component, sorted by
    vaddr. *)

val mapping_count : t -> int
val frames_in_use : t -> int
