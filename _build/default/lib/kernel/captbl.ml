module Pair = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Pair)

type t = unit Tbl.t

let create () = Tbl.create 64
let grant t ~client ~server = Tbl.replace t (client, server) ()
let revoke t ~client ~server = Tbl.remove t (client, server)
let allowed t ~client ~server = Tbl.mem t (client, server)

let servers_of t ~client =
  Tbl.fold (fun (c, s) () acc -> if c = client then s :: acc else acc) t []
  |> List.sort_uniq compare

let clients_of t ~server =
  Tbl.fold (fun (c, s) () acc -> if s = server then c :: acc else acc) t []
  |> List.sort_uniq compare
