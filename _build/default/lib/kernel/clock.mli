(** Virtual time for the discrete-event simulation.

    All durations in the system are expressed in nanoseconds of virtual
    time. The paper's evaluation reports microseconds; conversion helpers
    are provided for the harness. A single [Clock.t] is owned by the
    simulator; components advance it only through [Ctx.charge]. *)

type t

val create : unit -> t
(** A clock starting at time 0. *)

val now : t -> int
(** Current virtual time in nanoseconds. *)

val advance : t -> int -> unit
(** [advance t ns] moves time forward. Raises [Invalid_argument] if [ns]
    is negative. *)

val advance_to : t -> int -> unit
(** [advance_to t deadline] jumps to an absolute time; no-op if the
    deadline is in the past. *)

val ns_of_us : float -> int
val us_of_ns : int -> float
val s_of_ns : int -> float
val ns_of_ms : float -> int
