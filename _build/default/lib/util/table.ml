type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?aligns ~header rows =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then
        invalid_arg "Table.render: row arity mismatch")
    rows;
  let aligns =
    match aligns with
    | Some a when List.length a = arity -> a
    | Some _ -> invalid_arg "Table.render: aligns arity mismatch"
    | None -> Left :: List.init (arity - 1) (fun _ -> Right)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let line cells =
    let padded =
      List.map2
        (fun (w, a) c -> " " ^ pad a w c ^ " ")
        (List.combine widths aligns)
        cells
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (line header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print ?aligns ~header rows =
  print_endline (render ?aligns ~header rows)
