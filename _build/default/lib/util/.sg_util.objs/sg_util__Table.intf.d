lib/util/table.mli:
