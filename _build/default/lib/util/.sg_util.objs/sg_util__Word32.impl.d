lib/util/word32.ml: Int32 Printf
