lib/util/rng.mli:
