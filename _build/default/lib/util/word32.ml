type t = int

let width = 32
let mask w = w land 0xFFFFFFFF

let flip_bit w i =
  if i < 0 || i >= width then invalid_arg "Word32.flip_bit: bit out of range";
  mask (w lxor (1 lsl i))

let bit w i =
  if i < 0 || i >= width then invalid_arg "Word32.bit: bit out of range";
  (w lsr i) land 1 = 1

let apply_mask w m = mask (w lxor m)

let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + (w land 1)) (w lsr 1) in
  go 0 (mask w)

let to_hex w = Printf.sprintf "0x%08X" (mask w)
let of_int32 i = mask (Int32.to_int i land 0xFFFFFFFF)
let to_int32 w = Int32.of_int (mask w)
