type summary = {
  n : int;
  mean : float;
  stdev : float;
  min : float;
  max : float;
}

let summarize_array a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let sum = Array.fold_left ( +. ) 0.0 a in
  let mean = sum /. float_of_int n in
  let sq = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a in
  let stdev = if n < 2 then 0.0 else sqrt (sq /. float_of_int (n - 1)) in
  let min = Array.fold_left Float.min a.(0) a in
  let max = Array.fold_left Float.max a.(0) a in
  { n; mean; stdev; min; max }

let summarize l = summarize_array (Array.of_list l)

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let mean l = (summarize l).mean

let ratio_percent ~baseline ~measured =
  (baseline -. measured) /. baseline *. 100.0

let pp_summary ppf s =
  Format.fprintf ppf "%.3f ± %.3f (n=%d, min=%.3f, max=%.3f)" s.mean s.stdev
    s.n s.min s.max
