(** Summary statistics for benchmark and campaign reporting.

    The paper reports averages with standard deviations for all
    micro-benchmarks (Fig 6) and throughput runs (Fig 7). *)

type summary = {
  n : int;
  mean : float;
  stdev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val summarize_array : float array -> summary

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0,1\]], linear interpolation; sorts a
    copy of [a]. Raises [Invalid_argument] on an empty array. *)

val mean : float list -> float
val ratio_percent : baseline:float -> measured:float -> float
(** [ratio_percent ~baseline ~measured] is the slowdown of [measured]
    versus [baseline] in percent, e.g. 11.84 for the paper's SuperGlue
    web-server figure. *)

val pp_summary : Format.formatter -> summary -> unit
