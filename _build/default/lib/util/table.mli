(** Plain-text table rendering for benchmark and campaign reports.

    Used by the harness to print rows in the same layout as the paper's
    Table II and Figure 6/7 data. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a boxed ASCII table. All rows must have
    the same arity as [header]; [aligns] defaults to left for the first
    column and right for the rest. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
