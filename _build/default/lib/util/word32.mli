(** 32-bit machine words for the simulated register file.

    The paper's platform encodes registers as single 32-bit words and
    injects faults by XOR-ing a fault mask against a register (§V-A).
    Values are stored in native [int]s kept in the range [\[0, 2^32)]. *)

type t = int

val mask : t -> t
(** Truncate to 32 bits. *)

val flip_bit : t -> int -> t
(** [flip_bit w i] flips bit [i] (0 = LSB). [i] must be in [\[0, 32)]. *)

val bit : t -> int -> bool
(** [bit w i] reads bit [i]. *)

val apply_mask : t -> t -> t
(** [apply_mask w m] XORs fault mask [m] into [w] (paper's SWIFI model). *)

val popcount : t -> int

val to_hex : t -> string
(** Rendering such as ["0xDEADBEEF"]. *)

val of_int32 : int32 -> t
val to_int32 : t -> int32
