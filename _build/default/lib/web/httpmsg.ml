type request = {
  rq_method : string;
  rq_path : string;
  rq_version : string;
  rq_headers : (string * string) list;
}

let split_lines s =
  String.split_on_char '\n' s
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)

let parse_header line =
  match String.index_opt line ':' with
  | None -> Error ("malformed header: " ^ line)
  | Some i ->
      let key = String.sub line 0 i in
      let v = String.sub line (i + 1) (String.length line - i - 1) in
      Ok (String.lowercase_ascii key, String.trim v)

let parse_request s =
  match split_lines s with
  | [] | [ "" ] -> Error "empty request"
  | first :: rest -> (
      match String.split_on_char ' ' first with
      | [ m; path; version ] ->
          let rec headers acc = function
            | [] | "" :: _ -> Ok (List.rev acc)
            | line :: rest -> (
                match parse_header line with
                | Ok kv -> headers (kv :: acc) rest
                | Error e -> Error e)
          in
          Result.map
            (fun hs ->
              { rq_method = m; rq_path = path; rq_version = version; rq_headers = hs })
            (headers [] rest)
      | _ -> Error ("malformed request line: " ^ first))

let render_request ?(headers = [ ("Host", "localhost"); ("User-Agent", "ab/2.3") ])
    ~path () =
  let hs =
    headers |> List.map (fun (k, v) -> k ^ ": " ^ v ^ "\r\n") |> String.concat ""
  in
  Printf.sprintf "GET %s HTTP/1.1\r\n%s\r\n" path hs

type response = {
  rs_status : int;
  rs_reason : string;
  rs_headers : (string * string) list;
  rs_body : string;
}

let render_response r =
  let hs =
    ("Content-Length", string_of_int (String.length r.rs_body)) :: r.rs_headers
    |> List.map (fun (k, v) -> k ^ ": " ^ v ^ "\r\n")
    |> String.concat ""
  in
  Printf.sprintf "HTTP/1.1 %d %s\r\n%s\r\n%s" r.rs_status r.rs_reason hs r.rs_body

let parse_response s =
  match split_lines s with
  | first :: rest -> (
      match String.split_on_char ' ' first with
      | "HTTP/1.1" :: code :: reason -> (
          match int_of_string_opt code with
          | None -> Error ("bad status: " ^ first)
          | Some status ->
              let rec skip_headers = function
                | "" :: body -> String.concat "\n" body
                | _ :: rest -> skip_headers rest
                | [] -> ""
              in
              Ok
                {
                  rs_status = status;
                  rs_reason = String.concat " " reason;
                  rs_headers = [];
                  rs_body = skip_headers rest;
                })
      | _ -> Error ("malformed status line: " ^ first))
  | [] -> Error "empty response"

let ok ~body =
  {
    rs_status = 200;
    rs_reason = "OK";
    rs_headers = [ ("Server", "composite-httpd"); ("Content-Type", "text/html") ];
    rs_body = body;
  }

let not_found =
  {
    rs_status = 404;
    rs_reason = "Not Found";
    rs_headers = [ ("Server", "composite-httpd") ];
    rs_body = "<html>404</html>";
  }
