(** The componentized web server (paper §V-E).

    An application-level HTTP server installed on top of the six system
    services, system- and I/O-intensive so that the holistic cost of the
    recovery infrastructure shows up in throughput. Per request the
    server: parses the HTTP request, serializes on the cache lock, reads
    the document through the RAM file system, notifies an asynchronous
    logger component through the (global) event service, periodically
    recycles response buffer pages through the memory manager, and runs
    a stats thread on the timer manager — "a web server that makes use
    of all system-level components".

    In the base configuration a fault in any of those services takes the
    server down; with C³ or SuperGlue stubs wired by
    {!Sg_components.Sysbuild}, recovery proceeds in parallel with
    continued operation. *)

type t = {
  ws_http : Sg_os.Comp.cid;
  ws_logger : Sg_os.Comp.cid;
  ws_served : int ref;  (** requests answered (any status) *)
  ws_logged : int ref;  (** log notifications delivered *)
  ws_stats_ticks : int ref;  (** periodic stats-thread wakeups *)
  ws_ready : bool ref;  (** documents seeded, logger event live *)
  ws_stop : bool ref;
  ws_log_evt : int option ref;
  ws_timeline : (int * int) list ref;
      (** (virtual ns, requests served so far), sampled every stats tick
          (10 virtual ms) — the data behind the Fig 7 timeline *)
}

val install :
  ?app_work_ns:int ->
  ?docs:(string * string) list ->
  Sg_components.Sysbuild.system ->
  t
(** Register the server components, seed the file system with the
    document set (default: one ~1 KiB [/index.html]), and start the
    logger and stats threads. [app_work_ns] is the per-request
    application compute (network stack, parsing, copying) outside the
    system services; the default is calibrated so the fault-free base
    configuration serves ≈16 200 requests/second (paper Fig 7). *)

val default_app_work_ns : int

val stop : Sg_components.Sysbuild.system -> t -> unit
(** Ask the logger and stats threads to exit (lets the run drain). *)
