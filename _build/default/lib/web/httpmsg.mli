(** HTTP/1.1 message parsing and rendering for the web-server workload.

    A real (if minimal) implementation: request-line and header parsing,
    and status-line/header/body response building — the server component
    genuinely parses the request text the load generator produces. *)

type request = {
  rq_method : string;
  rq_path : string;
  rq_version : string;
  rq_headers : (string * string) list;
}

val parse_request : string -> (request, string) result
val render_request : ?headers:(string * string) list -> path:string -> unit -> string

type response = {
  rs_status : int;
  rs_reason : string;
  rs_headers : (string * string) list;
  rs_body : string;
}

val render_response : response -> string
val parse_response : string -> (response, string) result
val ok : body:string -> response
val not_found : response
