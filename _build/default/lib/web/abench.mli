(** An [ab]-style closed-loop HTTP load generator (paper §V-E: "ab sends
    50000 requests with a maximum of 10 requests concurrently").

    Spawns [concurrency] client fibers in a network-client component;
    each sends real HTTP request text to the server and validates the
    response. Throughput is completed requests over the virtual time the
    benchmark window took. Optionally a fault-injection thread crashes a
    rotating system service at a fixed period during the run. *)

type result = {
  ab_requests : int;  (** requests completed *)
  ab_errors : int;  (** non-200 responses or parse failures *)
  ab_faults : int;  (** service crashes injected during the run *)
  ab_sim_ns : int;  (** virtual duration of the benchmark window *)
  ab_rps : float;  (** requests per (virtual) second *)
}

val run :
  ?concurrency:int ->
  ?fault_period_ns:int ->
  requests:int ->
  Sg_components.Sysbuild.system ->
  Server.t ->
  result
(** Run to completion ([Sg_os.Sim.run] inside). [fault_period_ns], when
    given, crashes one system service every period, rotating over the
    six services (the paper's "one crash every 10 seconds into a
    different system-level component"). *)

val apache_reference : requests:int -> result
(** The external Apache/Linux reference point of Fig 7: a monolithic
    server model with no component invocations, calibrated to the
    paper's ≈17 600 requests/second. *)

type bucket = {
  b_start_s : float;  (** bucket start, virtual seconds *)
  b_rps : float;  (** throughput within the bucket *)
  b_crashes : int;  (** service crashes that landed in the bucket *)
}

val timeline : Sg_components.Sysbuild.system -> Server.t -> bucket list
(** The Fig 7 timeline: per-stats-tick throughput derived from the
    server's served-count samples, with the crash instants (from the
    simulator's recovery trace) attributed to their buckets. Call after
    {!run}. *)

val render_timeline : bucket list -> string
(** An ASCII rendering: one bar per bucket, crash markers as in the
    paper's red crosses. *)
