lib/web/abench.ml: Array Buffer Float Format Httpmsg List Printf Server Sg_components Sg_kernel Sg_os String
