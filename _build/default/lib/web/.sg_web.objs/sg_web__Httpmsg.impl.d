lib/web/httpmsg.ml: List Printf Result String
