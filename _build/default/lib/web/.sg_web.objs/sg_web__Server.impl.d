lib/web/server.ml: Httpmsg List Sg_components Sg_os Sg_util String
