lib/web/server.mli: Sg_components Sg_os
