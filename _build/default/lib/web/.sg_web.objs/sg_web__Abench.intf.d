lib/web/abench.mli: Server Sg_components
