lib/web/httpmsg.mli:
