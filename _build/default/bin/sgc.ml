(* sgc — the SuperGlue IDL compiler command-line interface.

   Compiles .sgidl interface specifications into stub modules, renders
   the plain header of the paper's first pipeline stage, and reports the
   model/mechanism/state-machine diagnostics. *)

open Cmdliner
module Compiler = Superglue.Compiler
module Codegen = Superglue.Codegen
module Machine = Superglue.Machine
module Model = Superglue.Model
module Ir = Superglue.Ir

let load source builtin =
  match (source, builtin) with
  | Some path, None -> Compiler.compile_file path
  | None, Some name -> Compiler.builtin name
  | _ -> failwith "give exactly one of FILE or --builtin NAME"

let write_out out text =
  match out with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text);
      Printf.eprintf "wrote %s (%d LOC)\n" path (Codegen.loc text)

let file_arg =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Interface specification (.sgidl).")

let builtin_arg =
  Arg.(
    value
    & opt (some (enum (List.map (fun n -> (n, n)) Compiler.builtin_names))) None
    & info [ "builtin" ] ~docv:"NAME"
        ~doc:"Use an embedded system interface instead of a file.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output file (default: stdout).")

let handle f =
  try `Ok (f ()) with
  | Compiler.Compile_error msg -> `Error (false, msg)
  | Failure msg -> `Error (false, msg)

let compile_cmd =
  let run source builtin out =
    handle (fun () ->
        let a = load source builtin in
        List.iter (Printf.eprintf "warning: %s\n") a.Compiler.a_warnings;
        write_out out (Codegen.emit a))
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Generate the OCaml client and server stub module.")
    Term.(ret (const run $ file_arg $ builtin_arg $ out_arg))

let header_cmd =
  let run source builtin out =
    handle (fun () ->
        let a = load source builtin in
        write_out out (Compiler.emit_header a.Compiler.a_ir))
  in
  Cmd.v
    (Cmd.info "header" ~doc:"Render the plain header (SuperGlue keywords erased).")
    Term.(ret (const run $ file_arg $ builtin_arg $ out_arg))

let check_cmd =
  let run source builtin =
    handle (fun () ->
        let a = load source builtin in
        let ir = a.Compiler.a_ir in
        Printf.printf "interface %s: %d functions, %d LOC of IDL\n"
          a.Compiler.a_name
          (List.length ir.Ir.ir_funcs)
          (Codegen.loc a.Compiler.a_source);
        Format.printf "model: %a@." Model.pp ir.Ir.ir_model;
        Printf.printf "mechanisms: %s\n" (String.concat " " (Compiler.mechanisms a));
        Printf.printf "templates included: %d of %d\n"
          (List.length (Codegen.included_templates a))
          Superglue.Templates.count;
        List.iter
          (fun st ->
            if st <> "s0" then begin
              let p = Machine.plan a.Compiler.a_machine st in
              Printf.printf "recovery %-28s walk: %s%s\n" st
                (String.concat " -> " p.Machine.pl_path)
                (match p.Machine.pl_restore with
                | [] -> ""
                | r -> "; restore: " ^ String.concat " " r)
            end)
          (Machine.states a.Compiler.a_machine);
        List.iter (Printf.printf "warning: %s\n") a.Compiler.a_warnings)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Diagnostics: model, mechanisms, recovery plans.")
    Term.(ret (const run $ file_arg $ builtin_arg))

let graph_cmd =
  let run source builtin out =
    handle (fun () ->
        let a = load source builtin in
        write_out out (Machine.to_dot a.Compiler.a_machine))
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:
         "Render the descriptor state machine with its recovery plans as \
          Graphviz DOT (the Fig 2 diagrams).")
    Term.(ret (const run $ file_arg $ builtin_arg $ out_arg))

let () =
  let info =
    Cmd.info "sgc" ~version:"1.0"
      ~doc:"SuperGlue IDL compiler for interface-driven fault recovery"
  in
  exit (Cmd.eval (Cmd.group info [ compile_cmd; header_cmd; check_cmd; graph_cmd ]))
