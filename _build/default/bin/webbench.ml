(* superglue-webbench — web-server throughput benchmark CLI
   (paper §V-E, Fig 7). *)

open Cmdliner
module Sim = Sg_os.Sim
module Sysbuild = Sg_components.Sysbuild
module Server = Sg_web.Server
module Abench = Sg_web.Abench

let mode_conv =
  let parse = function
    | "base" -> Ok Sysbuild.Base
    | "c3" -> Ok (Sysbuild.Stubbed Sysbuild.c3_stubset)
    | "superglue" -> Ok Superglue.Stubset.mode
    | "superglue-gen" -> Ok Sg_genstubs.Gen_stubset.mode
    | m -> Error (`Msg ("unknown mode " ^ m))
  in
  Arg.conv (parse, fun ppf _ -> Format.fprintf ppf "<mode>")

let mode_arg =
  Arg.(
    value
    & opt (some mode_conv) None
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Run one configuration (base, c3, superglue, superglue-gen); \
              default: the full Fig 7 comparison.")

let requests_arg =
  Arg.(value & opt int 50_000 & info [ "requests" ] ~docv:"N" ~doc:"HTTP requests.")

let timeline_arg =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:"Print the per-10ms throughput timeline with crash markers \
              (the content of the paper's Fig 7 plot).")

let faults_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-period-ms" ] ~docv:"MS"
        ~doc:"Crash one system service every MS virtual milliseconds.")

let run mode requests fault_ms timeline =
  let fault_period_ns = Option.map (fun ms -> ms * 1_000_000) fault_ms in
  match mode with
  | None -> Sg_harness.Fig7.print ~requests ()
  | Some mode ->
      let sys = Sysbuild.build mode in
      let server = Server.install sys in
      let r = Abench.run ?fault_period_ns ~requests sys server in
      Printf.printf
        "%s: %.0f req/s over %.3f virtual s (errors=%d, crashes=%d, reboots=%d)\n"
        sys.Sysbuild.sys_mode r.Abench.ab_rps
        (Sg_kernel.Clock.s_of_ns r.Abench.ab_sim_ns)
        r.Abench.ab_errors r.Abench.ab_faults
        (Sim.reboots sys.Sysbuild.sys_sim);
      if timeline then begin
        print_string (Abench.render_timeline (Abench.timeline sys server));
        if Sys.getenv_opt "SG_DEBUG_TRACE" <> None then
          List.iter
            (fun e -> Format.printf "%a@." Sim.pp_trace_event e)
            (Sim.trace sys.Sysbuild.sys_sim)
      end

let () =
  let term =
    Term.(const run $ mode_arg $ requests_arg $ faults_arg $ timeline_arg)
  in
  let info =
    Cmd.info "superglue-webbench" ~doc:"Componentized web-server throughput (Fig 7)"
  in
  exit (Cmd.eval (Cmd.v info term))
