(* Prints the exact SWIFI outcome distribution per component profile by
   exhaustively sweeping registers, bits and offsets. *)
open Sg_kernel
let dist usage =
  let total = ref 0 and counts = Hashtbl.create 8 in
  let bump k = Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0) in
  Array.iter (fun reg ->
    for bit = 0 to 31 do
      let d = Usage.duration_ns usage in
      let step = max 1 (d / 200) in
      let at = ref 0 in
      while !at <= d do
        incr total;
        (match Usage.classify usage ~reg ~bit ~at:!at with
         | Usage.Undetected -> bump "undetected"
         | Usage.Failstop _ -> bump "failstop"
         | Usage.Segfault -> bump "segfault"
         | Usage.Propagated -> bump "propagated"
         | Usage.Hang -> bump "hang");
        at := !at + step
      done
    done) Reg.all;
  List.map (fun k -> (k, 500.0 *. float_of_int (Option.value (Hashtbl.find_opt counts k) ~default:0) /. float_of_int !total))
    ["failstop"; "segfault"; "propagated"; "hang"; "undetected"]
let () =
  List.iter (fun (name, p) ->
    match p "x_" with
    | Some u ->
      let d = dist u in
      Printf.printf "%-6s" name;
      List.iter (fun (k, v) -> Printf.printf "  %s=%6.1f" k v) d;
      print_newline ()
    | None -> ())
    [ ("sched", fun _ -> Sg_components.Profiles.sched "sched_x");
      ("mm", fun _ -> Sg_components.Profiles.mm "mman_x");
      ("fs", fun _ -> Sg_components.Profiles.fs "tx");
      ("lock", fun _ -> Sg_components.Profiles.lock "lock_x");
      ("evt", fun _ -> Sg_components.Profiles.event "evt_x");
      ("timer", fun _ -> Sg_components.Profiles.timer "timer_x") ]
