(* superglue-campaign — the SWIFI fault-injection campaign CLI
   (paper §V-D, Table II). *)

open Cmdliner
module Campaign = Sg_swifi.Campaign
module Sysbuild = Sg_components.Sysbuild

let mode_conv =
  let parse = function
    | "base" -> Ok Sysbuild.Base
    | "c3" -> Ok (Sysbuild.Stubbed Sysbuild.c3_stubset)
    | "superglue" -> Ok Superglue.Stubset.mode
    | "superglue-gen" -> Ok Sg_genstubs.Gen_stubset.mode
    | m -> Error (`Msg ("unknown mode " ^ m))
  in
  let print ppf _ = Format.fprintf ppf "<mode>" in
  Arg.conv (parse, print)

let mode_arg =
  Arg.(
    value
    & opt mode_conv Superglue.Stubset.mode
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"System configuration: base, c3, superglue or superglue-gen.")

let iface_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "iface" ] ~docv:"IFACE"
        ~doc:"Target one service (sched mm fs lock evt timer); default: all six.")

let injections_arg =
  Arg.(
    value & opt int 500
    & info [ "n"; "injections" ] ~docv:"N" ~doc:"Faults to inject per service.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed.")

let cmon_arg =
  Arg.(
    value & flag
    & info [ "cmon" ]
        ~doc:
          "Arm the C'MON latent-fault monitor: loop-bound hangs are \
           detected within an execution-budget overrun and recovered \
           instead of hanging the system.")

let run mode iface injections seed cmon =
  let cmon_period_ns = if cmon then Some 5_000 else None in
  match iface with
  | Some iface ->
      let row = Campaign.run ~seed ?cmon_period_ns ~mode ~iface ~injections () in
      Format.printf "%a@." Campaign.pp_row row
  | None ->
      if cmon then
        List.iter
          (fun iface ->
            let row =
              Campaign.run ~seed ?cmon_period_ns ~mode ~iface ~injections ()
            in
            Format.printf "%a@." Campaign.pp_row row)
          Sg_components.Workloads.all_ifaces
      else Sg_harness.Table2.print ~mode ~injections ()

let () =
  let term =
    Term.(const run $ mode_arg $ iface_arg $ injections_arg $ seed_arg $ cmon_arg)
  in
  let info =
    Cmd.info "superglue-campaign"
      ~doc:"SWIFI register bit-flip fault-injection campaign (Table II)"
  in
  exit (Cmd.eval (Cmd.v info term))
