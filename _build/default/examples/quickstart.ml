(* Quickstart: build the componentized OS with SuperGlue-generated
   recovery stubs, crash the lock service while threads contend a lock,
   and watch the workload complete correctly anyway.

     dune exec examples/quickstart.exe
*)

module Sim = Sg_os.Sim
module Comp = Sg_os.Comp
module Sysbuild = Sg_components.Sysbuild
module Lock = Sg_components.Lock

let () =
  (* a full system: scheduler, memory manager, RamFS, lock, event and
     timer services, with SuperGlue stubs compiled from idl/*.sgidl *)
  let sys = Sysbuild.build Superglue.Stubset.mode in
  let sim = sys.Sysbuild.sys_sim in
  let app = sys.Sysbuild.sys_app1 in
  let lock_port = sys.Sysbuild.sys_port ~client:app ~iface:"lock" in

  (* crash the lock service on its 10th, 20th, ... dispatch *)
  let dispatches = ref 0 in
  Sim.set_on_dispatch sim
    (Some
       (fun sim cid _fn ->
         if cid = sys.Sysbuild.sys_lock then begin
           incr dispatches;
           if !dispatches mod 10 = 0 then begin
             Printf.printf "[%8d ns] !! transient fault crashes the lock service\n"
               (Sim.now sim);
             Sim.mark_failed sim cid ~detector:"quickstart";
             raise (Comp.Crash { cid; detector = "quickstart" })
           end
         end));

  let in_cs = ref 0 in
  let violations = ref 0 in
  let lock_id = ref None in
  let worker name =
    ignore
      (Sim.spawn sim ~prio:5 ~name ~home:app (fun sim ->
           let id =
             match !lock_id with
             | Some id -> id
             | None ->
                 let id = Lock.alloc lock_port sim in
                 lock_id := Some id;
                 id
           in
           for i = 1 to 5 do
             Lock.take lock_port sim id;
             incr in_cs;
             if !in_cs <> 1 then incr violations;
             Printf.printf "[%8d ns] %s holds the lock (iteration %d)\n"
               (Sim.now sim) name i;
             Sim.yield sim;
             decr in_cs;
             Lock.release lock_port sim id;
             Sim.yield sim
           done;
           Printf.printf "[%8d ns] %s done\n" (Sim.now sim) name))
  in
  worker "alice";
  worker "bob";
  (match Sim.run sim with
  | Sim.Completed -> ()
  | r -> Format.printf "run ended: %a@." Sim.pp_run_result r);
  Printf.printf
    "\nsummary: %d micro-reboots, %d mutual-exclusion violations, %d invocations\n"
    (Sim.reboots sim) !violations (Sim.invocations sim);
  if !violations = 0 && Sim.reboots sim > 0 then
    print_endline
      "the lock service was repeatedly destroyed and interface-driven\n\
       recovery rebuilt it each time - no thread ever saw a broken lock."
