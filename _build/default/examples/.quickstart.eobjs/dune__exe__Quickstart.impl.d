examples/quickstart.ml: Format Printf Sg_components Sg_os Superglue
