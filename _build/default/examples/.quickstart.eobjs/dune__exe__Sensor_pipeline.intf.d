examples/sensor_pipeline.mli:
