examples/fault_campaign.ml: Array Format List Printf Sg_swifi Superglue Sys
