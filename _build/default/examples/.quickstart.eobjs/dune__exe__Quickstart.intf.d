examples/quickstart.mli:
