examples/sensor_pipeline.ml: Array Format List Option Printf Sg_components Sg_os Sg_util String Superglue
