examples/custom_interface.mli:
