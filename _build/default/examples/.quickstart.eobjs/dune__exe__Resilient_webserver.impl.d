examples/resilient_webserver.ml: Printf Sg_components Sg_os Sg_web Superglue
