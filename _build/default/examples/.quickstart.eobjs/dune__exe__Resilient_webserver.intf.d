examples/resilient_webserver.mli:
