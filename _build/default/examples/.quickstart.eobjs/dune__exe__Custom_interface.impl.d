examples/custom_interface.ml: Format Hashtbl List Printf Sg_c3 Sg_cbuf Sg_os Sg_storage String Superglue
