(* An embedded-systems scenario (the paper's motivating domain): a
   periodic sensor pipeline on top of the recoverable system services.

   - a sampler thread wakes on the timer manager every millisecond and
     appends a reading to a ring file in the RAM file system, under the
     calibration lock;
   - a filter thread in a different component blocks on a (global) event
     the sampler triggers, reads the latest window back and keeps a
     running average;
   - meanwhile transient faults repeatedly destroy the timer, the lock,
     the event manager and the file system underneath the pipeline.

   The pipeline's output must be exactly the fault-free one: every
   sample preserved, every notification delivered.

     dune exec examples/sensor_pipeline.exe
*)

module Sim = Sg_os.Sim
module Sysbuild = Sg_components.Sysbuild
module Timer = Sg_components.Timer
module Lock = Sg_components.Lock
module Event = Sg_components.Event
module Ramfs = Sg_components.Ramfs
module Rng = Sg_util.Rng

let samples = 40

let run ~faults =
  let sys = Sysbuild.build Superglue.Stubset.mode in
  let sim = sys.Sysbuild.sys_sim in
  let app1 = sys.Sysbuild.sys_app1 and app2 = sys.Sysbuild.sys_app2 in
  let timer = sys.Sysbuild.sys_port ~client:app1 ~iface:"timer" in
  let lock = sys.Sysbuild.sys_port ~client:app1 ~iface:"lock" in
  let fs1 = sys.Sysbuild.sys_port ~client:app1 ~iface:"fs" in
  let evt1 = sys.Sysbuild.sys_port ~client:app1 ~iface:"evt" in
  let fs2 = sys.Sysbuild.sys_port ~client:app2 ~iface:"fs" in
  let evt2 = sys.Sysbuild.sys_port ~client:app2 ~iface:"evt" in
  let rng = Rng.create 2026 in
  let evt_id = ref None in
  let lock_id = ref None in
  let produced = ref [] in
  let consumed = ref [] in
  (* the sampler: timer-paced producer in component app1 *)
  let _ =
    Sim.spawn sim ~prio:5 ~name:"sampler" ~home:app1 (fun sim ->
        evt_id := Some (Event.split evt1 sim ~compid:app1 ~parent:0 ~grp:1);
        lock_id := Some (Lock.alloc lock sim);
        let t = Timer.create timer sim ~period_ns:1_000_000 in
        for i = 1 to samples do
          ignore (Timer.wait timer sim t);
          let reading = 500 + Rng.int rng 100 in
          produced := reading :: !produced;
          let line = Printf.sprintf "%04d:%04d\n" i reading in
          let l = Option.get !lock_id in
          Lock.take lock sim l;
          let fd = Ramfs.tsplit fs1 sim ~parent:Ramfs.root_fd ~name:"ring.dat" in
          ignore (Ramfs.tlseek fs1 sim ~fd ~off:((i - 1) * String.length line));
          ignore (Ramfs.twrite fs1 sim ~fd ~data:line);
          Ramfs.trelease fs1 sim ~fd;
          Lock.release lock sim l;
          Event.trigger evt1 sim ~compid:app1 (Option.get !evt_id)
        done;
        Timer.free timer sim t)
  in
  (* the filter: event-driven consumer in component app2 *)
  let _ =
    Sim.spawn sim ~prio:5 ~name:"filter" ~home:app2 (fun sim ->
        let rec wait_evt () =
          match !evt_id with
          | Some id -> id
          | None ->
              Sim.yield sim;
              wait_evt ()
        in
        let id = wait_evt () in
        for i = 1 to samples do
          Event.wait evt2 sim ~compid:app2 id;
          let fd = Ramfs.tsplit fs2 sim ~parent:Ramfs.root_fd ~name:"ring.dat" in
          ignore (Ramfs.tlseek fs2 sim ~fd ~off:((i - 1) * 10));
          let line = Ramfs.tread fs2 sim ~fd ~len:10 in
          Ramfs.trelease fs2 sim ~fd;
          (match String.index_opt line ':' with
          | Some j ->
              let v =
                String.sub line (j + 1) (String.length line - j - 2)
                |> String.trim |> int_of_string_opt
                |> Option.value ~default:(-1)
              in
              consumed := v :: !consumed
          | None -> consumed := -1 :: !consumed)
        done)
  in
  (* the fault storm over the four services the pipeline stands on *)
  if faults then begin
    let targets =
      [|
        sys.Sysbuild.sys_timer; sys.Sysbuild.sys_lock; sys.Sysbuild.sys_evt;
        sys.Sysbuild.sys_fs;
      |]
    in
    ignore
      (Sim.spawn sim ~prio:4 ~name:"swifi" ~home:app1 (fun sim ->
           let i = ref 0 in
           while List.length !consumed < samples do
             Sim.sleep_until sim (Sim.now sim + 2_500_000);
             if List.length !consumed < samples then begin
               Sim.mark_failed sim targets.(!i mod 4) ~detector:"sensor-demo";
               incr i
             end
           done))
  end;
  match Sim.run sim with
  | Sim.Completed -> (List.rev !produced, List.rev !consumed, Sim.reboots sim)
  | r -> failwith (Format.asprintf "pipeline failed: %a" Sim.pp_run_result r)

let () =
  let p0, c0, _ = run ~faults:false in
  let p1, c1, reboots = run ~faults:true in
  Printf.printf "fault-free run : %d samples produced, %d consumed\n"
    (List.length p0) (List.length c0);
  Printf.printf "under faults   : %d samples produced, %d consumed, %d micro-reboots\n"
    (List.length p1) (List.length c1) reboots;
  if p0 = c0 && p1 = c1 && p0 = p1 then
    print_endline
      "every reading survived: the pipeline's output under the fault storm\n\
       is byte-identical to the fault-free run."
  else begin
    print_endline "MISMATCH:";
    let show l = String.concat "," (List.map string_of_int l) in
    Printf.printf "  produced (faults): %s\n  consumed (faults): %s\n" (show p1) (show c1);
    exit 1
  end
