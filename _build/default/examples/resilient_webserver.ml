(* The paper's §V-E scenario: a system- and I/O-intensive web server
   keeps serving requests while system services beneath it are crashed
   every quarter of a (virtual) second.

     dune exec examples/resilient_webserver.exe
*)

module Sim = Sg_os.Sim
module Sysbuild = Sg_components.Sysbuild
module Server = Sg_web.Server
module Abench = Sg_web.Abench

let run name mode fault_period_ns =
  let sys = Sysbuild.build mode in
  let server = Server.install sys in
  let r = Abench.run ?fault_period_ns ~requests:20_000 sys server in
  Printf.printf
    "%-28s %8.0f req/s   errors=%d   service crashes=%d   micro-reboots=%d\n"
    name r.Abench.ab_rps r.Abench.ab_errors r.Abench.ab_faults
    (Sim.reboots sys.Sysbuild.sys_sim)

let () =
  print_endline "serving 20,000 HTTP requests (ab, concurrency 10):\n";
  run "composite (no recovery)" Sysbuild.Base None;
  run "+ superglue" Superglue.Stubset.mode None;
  run "+ superglue, under fire" Superglue.Stubset.mode (Some 250_000_000);
  print_newline ();
  (* without recovery, the same fault storm is fatal *)
  let sys = Sysbuild.build Sysbuild.Base in
  let server = Server.install sys in
  match Abench.run ~fault_period_ns:250_000_000 ~requests:20_000 sys server with
  | _ -> print_endline "unexpected: the base system survived"
  | exception Failure msg ->
      Printf.printf
        "the same fault storm on the base system: %s\n\
         (a single crashed system service takes the whole server down -\n\
         the motivation for interface-driven recovery)\n"
        msg
