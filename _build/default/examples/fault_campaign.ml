(* A miniature of the paper's Table II campaign: inject register
   bit-flips into two system services while their workloads run, and
   classify every outcome.

     dune exec examples/fault_campaign.exe [injections]
*)

module Campaign = Sg_swifi.Campaign

let () =
  let injections =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 120
  in
  Printf.printf
    "injecting %d single-bit register faults into each service\n\
     (fail-stop SEU model; every detected fault drives a micro-reboot\n\
     and an interface-driven recovery)\n\n"
    injections;
  List.iter
    (fun iface ->
      let row =
        Campaign.run ~mode:Superglue.Stubset.mode ~iface ~injections ()
      in
      Format.printf "%a@." Campaign.pp_row row)
    [ "sched"; "fs"; "lock" ];
  print_newline ();
  print_endline
    "run `dune exec bench/main.exe -- table2` for the full 500-fault\n\
     campaign over all six services, printed beside the paper's Table II."
