(* The compiler-emitted stub modules, compiled into sg_genstubs by the
   build, must drive the system exactly like the interpreted backend:
   fault-free runs, crash-recovery storms, and a differential comparison
   of virtual-time cost against the interpreter. *)

module Sim = Sg_os.Sim
module Comp = Sg_os.Comp
module Sysbuild = Sg_components.Sysbuild
module Workloads = Sg_components.Workloads
module Codegen = Superglue.Codegen
module Compiler = Superglue.Compiler

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_clean sys result check =
  (match result with
  | Sim.Completed -> ()
  | r ->
      Alcotest.failf "[%s] run did not complete: %a" sys.Sysbuild.sys_mode
        Sim.pp_run_result r);
  match check () with
  | [] -> ()
  | violations ->
      Alcotest.failf "[%s] postconditions violated: %s" sys.Sysbuild.sys_mode
        (String.concat "; " violations)

let test_gen_faultfree iface () =
  let sys = Sysbuild.build Sg_genstubs.Gen_stubset.mode in
  let check = Workloads.setup sys ~iface ~iters:25 in
  check_clean sys (Sim.run sys.Sysbuild.sys_sim) check

let install_crasher sys iface ~period =
  let target = Sysbuild.cid_of_iface sys iface in
  let count = ref 0 in
  Sim.set_on_dispatch sys.Sysbuild.sys_sim
    (Some
       (fun sim cid _fn ->
         if cid = target then begin
           incr count;
           if !count mod period = 0 then begin
             Sim.mark_failed sim cid ~detector:"forced";
             raise (Comp.Crash { cid; detector = "forced" })
           end
         end))

let test_gen_recovers iface period () =
  let sys = Sysbuild.build Sg_genstubs.Gen_stubset.mode in
  let check = Workloads.setup sys ~iface ~iters:25 in
  install_crasher sys iface ~period;
  check_clean sys (Sim.run sys.Sysbuild.sys_sim) check;
  if Sim.reboots sys.Sysbuild.sys_sim = 0 then
    Alcotest.fail "expected at least one micro-reboot"

(* Differential check: the generated code and the interpreter are two
   backends of the same compiler and must charge identical virtual time
   and perform identical invocation counts on identical runs. *)
let test_gen_equals_interp iface () =
  let run mode =
    let sys = Sysbuild.build mode in
    let check = Workloads.setup sys ~iface ~iters:40 in
    install_crasher sys iface ~period:11;
    check_clean sys (Sim.run sys.Sysbuild.sys_sim) check;
    ( Sim.now sys.Sysbuild.sys_sim,
      Sim.invocations sys.Sysbuild.sys_sim,
      Sim.reboots sys.Sysbuild.sys_sim )
  in
  let interp = run Superglue.Stubset.mode in
  let generated = run Sg_genstubs.Gen_stubset.mode in
  let t1, i1, r1 = interp and t2, i2, r2 = generated in
  if interp <> generated then
    Alcotest.failf
      "backends diverge: interp (t=%d, inv=%d, reboots=%d) vs generated (t=%d, inv=%d, reboots=%d)"
      t1 i1 r1 t2 i2 r2

let test_emitted_text_structure () =
  List.iter
    (fun name ->
      let text = Codegen.emit (Compiler.builtin name) in
      List.iter
        (fun fragment ->
          if not (contains text fragment) then
            Alcotest.failf "%s: generated code lacks %S" name fragment)
        [ "let client_config"; "let server_config"; "let track"; "let walk" ])
    Compiler.builtin_names

let test_emitted_loc_exceeds_idl () =
  (* Fig 6(c): a small declarative spec expands by roughly an order of
     magnitude into recovery code *)
  List.iter
    (fun name ->
      let a = Compiler.builtin name in
      let idl = Codegen.loc a.Compiler.a_source in
      let generated = Codegen.loc (Codegen.emit a) in
      if generated < (5 * idl) / 2 then
        Alcotest.failf "%s: %d LOC of IDL only produced %d LOC" name idl generated)
    Compiler.builtin_names

let test_template_catalogue () =
  (* global interfaces include the G0/U0 templates, local ones do not *)
  let names a = List.map fst (Codegen.included_templates a) in
  let evt = names (Compiler.builtin "evt") in
  let lock = names (Compiler.builtin "lock") in
  Alcotest.(check bool) "evt includes g0 upcall" true
    (List.mem "server/g0-upcall-creator" evt);
  Alcotest.(check bool) "lock excludes g0" false
    (List.mem "server/g0-upcall-creator" lock);
  Alcotest.(check bool) "lock includes re-acquire" true
    (List.mem "client/walk/block-hold-reacquire" lock);
  Alcotest.(check bool) "catalogue is non-trivial" true
    (Superglue.Templates.count >= 30)

let () =
  Alcotest.run "sg_genstubs"
    [
      ( "faultfree",
        List.map
          (fun iface ->
            Alcotest.test_case (iface ^ " fault-free") `Quick (test_gen_faultfree iface))
          Workloads.all_ifaces );
      ( "recovery",
        List.map
          (fun iface ->
            Alcotest.test_case
              (iface ^ " survives crashes")
              `Quick
              (test_gen_recovers iface 9))
          Workloads.all_ifaces );
      ( "differential",
        List.map
          (fun iface ->
            Alcotest.test_case
              (iface ^ ": generated == interpreted")
              `Quick
              (test_gen_equals_interp iface))
          Workloads.all_ifaces );
      ( "emission",
        [
          Alcotest.test_case "structure" `Quick test_emitted_text_structure;
          Alcotest.test_case "LOC expansion" `Quick test_emitted_loc_exceeds_idl;
          Alcotest.test_case "template catalogue" `Quick test_template_catalogue;
        ] );
    ]
