(* Unit tests for the recovery runtime: the descriptor tracker (including
   id virtualization), the client-stub engine's accounting, the server
   stub's storage bookkeeping, and the simulator's recovery trace. *)

module Sim = Sg_os.Sim
module Comp = Sg_os.Comp
module Tracker = Sg_c3.Tracker
module Cstub = Sg_c3.Cstub
module Sysbuild = Sg_components.Sysbuild
module Lock = Sg_components.Lock
module Ramfs = Sg_components.Ramfs
module Event = Sg_components.Event
module Storage = Sg_storage.Storage

let with_tracker f =
  let sim = Sim.create () in
  let tr = Tracker.create ~flavor:Tracker.C3 () in
  f sim tr

let test_tracker_add_find () =
  with_tracker (fun sim tr ->
      let d =
        Tracker.add tr sim ~state:"s" ~meta:[ ("k", Comp.VInt 9) ] ~epoch:0 7
      in
      Alcotest.(check int) "id" 7 d.Tracker.d_id;
      Alcotest.(check int) "server id defaults to id" 7 d.Tracker.d_server_id;
      Alcotest.(check (option int)) "meta" (Some 9) (Tracker.meta_int d "k");
      Alcotest.(check bool) "found" true (Tracker.find tr 7 <> None);
      Tracker.remove tr 7;
      Alcotest.(check bool) "removed" true (Tracker.find tr 7 = None))

let test_tracker_children () =
  with_tracker (fun sim tr ->
      let _p = Tracker.add tr sim ~state:"s" ~meta:[] ~epoch:0 1 in
      let _c1 =
        Tracker.add tr sim ~parent:(Tracker.Local 1) ~state:"s" ~meta:[] ~epoch:0 2
      in
      let c2 =
        Tracker.add tr sim ~parent:(Tracker.Local 1) ~state:"s" ~meta:[] ~epoch:0 3
      in
      Alcotest.(check int) "two children" 2 (List.length (Tracker.children tr 1));
      c2.Tracker.d_live <- false;
      Alcotest.(check int) "dead children excluded" 1
        (List.length (Tracker.children tr 1)))

let test_tracker_virtual_ids () =
  with_tracker (fun sim tr ->
      let v1 = Tracker.fresh tr and v2 = Tracker.fresh tr in
      Alcotest.(check bool) "fresh ids distinct" true (v1 <> v2);
      Alcotest.(check bool) "outside concrete id space" true (v1 >= 1 lsl 40);
      let _ = Tracker.add tr sim ~state:"s" ~meta:[] ~epoch:0 5 in
      (match Tracker.rekey tr ~from:5 ~to_:v1 with
      | Some d ->
          Alcotest.(check int) "virtual key" v1 d.Tracker.d_id;
          Alcotest.(check int) "server id is the concrete id" 5 d.Tracker.d_server_id
      | None -> Alcotest.fail "rekey failed");
      Alcotest.(check bool) "old key gone" true (Tracker.find tr 5 = None);
      Alcotest.(check bool) "new key present" true (Tracker.find tr v1 <> None);
      Alcotest.(check bool) "rekey of a missing key" true
        (Tracker.rekey tr ~from:99 ~to_:v2 = None))

let test_tracker_charges_by_flavor () =
  let sim = Sim.create () in
  let charge flavor =
    let tr = Tracker.create ~flavor () in
    let t0 = Sim.now sim in
    Tracker.track_charge tr sim;
    Sim.now sim - t0
  in
  let c3 = charge Tracker.C3 in
  let sg = charge Tracker.Superglue in
  Alcotest.(check bool) "superglue tracking dearer" true (sg > c3)

(* client-visible ids survive a server whose counter restarts *)
let test_virtualized_ids_survive_collision () =
  let sys = Sysbuild.build Superglue.Stubset.mode in
  let sim = sys.Sysbuild.sys_sim in
  let app = sys.Sysbuild.sys_app1 in
  let port = sys.Sysbuild.sys_port ~client:app ~iface:"lock" in
  let ok = ref false in
  let _ =
    Sim.spawn sim ~name:"t" ~home:app (fun sim ->
        let a = Lock.alloc port sim in
        Lock.take port sim a;
        (* crash: the rebooted lock service restarts its id counter *)
        Sim.mark_failed sim sys.Sysbuild.sys_lock ~detector:"test";
        (* a new allocation must not collide with the held lock's id *)
        let b = Lock.alloc port sim in
        Alcotest.(check bool) "distinct client ids" true (a <> b);
        Lock.take port sim b;
        Lock.release port sim b;
        Lock.release port sim a;
        Lock.free port sim a;
        Lock.free port sim b;
        ok := true)
  in
  (match Sim.run sim with
  | Sim.Completed -> ()
  | r -> Alcotest.failf "run: %a" Sim.pp_run_result r);
  Alcotest.(check bool) "completed" true !ok

(* Y_dr = false: a released parent's tracking survives for its children *)
let test_ydr_keeps_closed_records () =
  let sys = Sysbuild.build Superglue.Stubset.mode in
  let sim = sys.Sysbuild.sys_sim in
  let app = sys.Sysbuild.sys_app1 in
  let port = sys.Sysbuild.sys_port ~client:app ~iface:"fs" in
  let got = ref "" in
  let _ =
    Sim.spawn sim ~name:"t" ~home:app (fun sim ->
        let parent = Ramfs.tsplit port sim ~parent:Ramfs.root_fd ~name:"dir" in
        let child = Ramfs.tsplit port sim ~parent ~name:"leaf" in
        ignore (Ramfs.twrite port sim ~fd:child ~data:"deep");
        (* close the parent, then crash: the child's recovery must still
           resolve its parent chain from the kept record *)
        Ramfs.trelease port sim ~fd:parent;
        Sim.mark_failed sim sys.Sysbuild.sys_fs ~detector:"test";
        ignore (Ramfs.tlseek port sim ~fd:child ~off:0);
        got := Ramfs.tread port sim ~fd:child ~len:4)
  in
  (match Sim.run sim with
  | Sim.Completed -> ()
  | r -> Alcotest.failf "run: %a" Sim.pp_run_result r);
  Alcotest.(check string) "nested file recovered" "deep" !got

let test_recovery_trace () =
  let sys = Sysbuild.build Superglue.Stubset.mode in
  let sim = sys.Sysbuild.sys_sim in
  let app = sys.Sysbuild.sys_app1 in
  let port = sys.Sysbuild.sys_port ~client:app ~iface:"lock" in
  let _ =
    Sim.spawn sim ~name:"t" ~home:app (fun sim ->
        let a = Lock.alloc port sim in
        Sim.mark_failed sim sys.Sysbuild.sys_lock ~detector:"trace-test";
        Lock.take port sim a;
        Lock.release port sim a)
  in
  (match Sim.run sim with
  | Sim.Completed -> ()
  | r -> Alcotest.failf "run: %a" Sim.pp_run_result r);
  let events = Sim.trace sim in
  let has kind =
    List.exists
      (fun e ->
        match (e.Sim.tv_kind, kind) with
        | `Failed _, `Failed -> true
        | `Microreboot, `Reboot -> true
        | _ -> false)
      events
  in
  Alcotest.(check bool) "fault recorded" true (has `Failed);
  Alcotest.(check bool) "reboot recorded" true (has `Reboot);
  (* chronology: the fault detection precedes the micro-reboot *)
  let times kind =
    List.filter_map
      (fun e ->
        match (e.Sim.tv_kind, kind) with
        | `Failed _, `Failed | `Microreboot, `Reboot -> Some e.Sim.tv_at_ns
        | _ -> None)
      events
  in
  Alcotest.(check bool) "fault before reboot" true
    (List.nth (times `Failed) 0 <= List.nth (times `Reboot) 0)

let test_upcall_trace_on_g0 () =
  (* the evt global-descriptor recovery leaves an upcall in the trace *)
  let sys = Sysbuild.build Superglue.Stubset.mode in
  let sim = sys.Sysbuild.sys_sim in
  let app1 = sys.Sysbuild.sys_app1 and app2 = sys.Sysbuild.sys_app2 in
  let port1 = sys.Sysbuild.sys_port ~client:app1 ~iface:"evt" in
  let port2 = sys.Sysbuild.sys_port ~client:app2 ~iface:"evt" in
  let evt = ref 0 in
  let _ =
    Sim.spawn sim ~prio:4 ~name:"creator" ~home:app2 (fun sim ->
        evt := Event.split port2 sim ~compid:app2 ~parent:0 ~grp:1)
  in
  let _ =
    Sim.spawn sim ~prio:5 ~name:"trigger" ~home:app1 (fun sim ->
        Sim.mark_failed sim sys.Sysbuild.sys_evt ~detector:"test";
        Event.trigger port1 sim ~compid:app1 !evt)
  in
  (match Sim.run sim with
  | Sim.Completed -> ()
  | r -> Alcotest.failf "run: %a" Sim.pp_run_result r);
  let upcalled =
    List.exists
      (fun e -> match e.Sim.tv_kind with `Upcall _ -> e.Sim.tv_cid = app2 | _ -> false)
      (Sim.trace sim)
  in
  Alcotest.(check bool) "upcall into the creator recorded" true upcalled

let test_invalid_transition_detection () =
  (* calling release on a never-taken lock is outside sigma: the
     SuperGlue stub counts it (paper SectionIII-B fault detection) *)
  let before =
    Superglue.Interp.invalid_transitions
      (Superglue.Interp.client_config
         ~storage:(Storage.create (Sg_cbuf.Cbuf.create ()))
         (Superglue.Compiler.builtin "lock").Superglue.Compiler.a_ir)
  in
  let sys = Sysbuild.build Superglue.Stubset.mode in
  let sim = sys.Sysbuild.sys_sim in
  let app = sys.Sysbuild.sys_app1 in
  let port = sys.Sysbuild.sys_port ~client:app ~iface:"lock" in
  let _ =
    Sim.spawn sim ~name:"t" ~home:app (fun sim ->
        let a = Lock.alloc port sim in
        Lock.release port sim a)
  in
  ignore (Sim.run sim);
  let after =
    Superglue.Interp.invalid_transitions
      (Superglue.Interp.client_config
         ~storage:(Storage.create (Sg_cbuf.Cbuf.create ()))
         (Superglue.Compiler.builtin "lock").Superglue.Compiler.a_ir)
  in
  Alcotest.(check bool) "invalid transition counted" true (after > before)

let test_machine_to_dot () =
  let a = Superglue.Compiler.builtin "lock" in
  let dot = Superglue.Machine.to_dot a.Superglue.Compiler.a_machine in
  List.iter
    (fun needle ->
      if
        not
          (let n = String.length dot and m = String.length needle in
           let rec go i = i + m <= n && (String.sub dot i m = needle || go (i + 1)) in
           go 0)
      then Alcotest.failf "dot output lacks %S" needle)
    [ "digraph"; "after:lock_take"; "recover: lock_alloc -> lock_take" ]

let () =
  Alcotest.run "sg_c3"
    [
      ( "tracker",
        [
          Alcotest.test_case "add/find/remove" `Quick test_tracker_add_find;
          Alcotest.test_case "children" `Quick test_tracker_children;
          Alcotest.test_case "virtual ids" `Quick test_tracker_virtual_ids;
          Alcotest.test_case "flavor costs" `Quick test_tracker_charges_by_flavor;
        ] );
      ( "engine",
        [
          Alcotest.test_case "virtualized ids survive collisions" `Quick
            test_virtualized_ids_survive_collision;
          Alcotest.test_case "Y_dr keeps closed records" `Quick
            test_ydr_keeps_closed_records;
          Alcotest.test_case "invalid transitions detected" `Quick
            test_invalid_transition_detection;
        ] );
      ( "trace",
        [
          Alcotest.test_case "fault and reboot recorded" `Quick test_recovery_trace;
          Alcotest.test_case "G0 upcall recorded" `Quick test_upcall_trace_on_g0;
        ] );
      ("tooling", [ Alcotest.test_case "state machine DOT" `Quick test_machine_to_dot ]);
    ]
