(* Integration tests for the Sg_os simulation core: fibers, blocking,
   invocation, crash propagation, micro-reboot and diversion. *)

open Sg_os
module Usage = Sg_kernel.Usage

let trivial_spec ?(name = "app") ?(dispatch = fun _ _ _ _ -> Ok Comp.VUnit) () =
  {
    Sim.sc_name = name;
    sc_image_kb = 16;
    sc_init = (fun _ _ -> ());
    sc_boot_init = (fun _ _ -> ());
    sc_dispatch = dispatch;
    sc_reflect = (fun _ _ _ _ -> Error Comp.EINVAL);
    sc_usage = (fun _ -> None);
  }

let test_spawn_run () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let hits = ref 0 in
  let _ = Sim.spawn sim ~name:"t1" ~home:app (fun _ -> incr hits) in
  let _ = Sim.spawn sim ~name:"t2" ~home:app (fun _ -> incr hits) in
  Alcotest.(check bool) "completed" true (Sim.run sim = Sim.Completed);
  Alcotest.(check int) "both ran" 2 !hits

let test_priority_order () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let order = ref [] in
  let _ = Sim.spawn sim ~prio:10 ~name:"low" ~home:app (fun _ -> order := "low" :: !order) in
  let _ = Sim.spawn sim ~prio:1 ~name:"high" ~home:app (fun _ -> order := "high" :: !order) in
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "high first" [ "low"; "high" ] !order

let test_block_wakeup_pingpong () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let trace = Buffer.create 16 in
  let tid_a = ref (-1) in
  let a_started = ref false in
  let _ =
    Sim.spawn sim ~name:"a" ~home:app (fun sim ->
        tid_a := Sim.current_tid sim;
        a_started := true;
        for _ = 1 to 3 do
          Buffer.add_char trace 'a';
          Sim.block sim
        done)
  in
  let _ =
    Sim.spawn sim ~name:"b" ~home:app (fun sim ->
        for _ = 1 to 3 do
          Buffer.add_char trace 'b';
          ignore (Sim.wakeup sim !tid_a);
          Sim.yield sim
        done)
  in
  Alcotest.(check bool) "completed" true (Sim.run sim = Sim.Completed);
  Alcotest.(check string) "interleaving" "abababa" (Buffer.contents trace ^ "a")

let test_sleep_advances_clock () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let woke_at = ref 0 in
  let _ =
    Sim.spawn sim ~name:"sleeper" ~home:app (fun sim ->
        Sim.sleep_until sim 5_000;
        woke_at := Sim.now sim)
  in
  Alcotest.(check bool) "completed" true (Sim.run sim = Sim.Completed);
  Alcotest.(check bool) "clock advanced to deadline" true (!woke_at >= 5_000)

let test_deadlock_detected () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let _ = Sim.spawn sim ~name:"stuck" ~home:app (fun sim -> Sim.block sim) in
  Alcotest.(check bool) "deadlock" true (Sim.run sim = Sim.Deadlock)

(* A counter server: get/inc; crashes on demand via a poison flag. *)
let counter_spec poison =
  let state = ref 0 in
  {
    Sim.sc_name = "counter";
    sc_image_kb = 16;
    sc_init = (fun _ _ -> state := 0);
    sc_boot_init = (fun _ _ -> ());
    sc_dispatch =
      (fun _ cid fn args ->
        if !poison then raise (Comp.Crash { cid; detector = "assert" });
        match (fn, args) with
        | "inc", [] ->
            incr state;
            Ok (Comp.VInt !state)
        | "get", [] -> Ok (Comp.VInt !state)
        | _ -> Error Comp.EINVAL);
    sc_reflect = (fun _ _ _ _ -> Error Comp.EINVAL);
    sc_usage = (fun _ -> None);
  }

let test_invoke_basic () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let poison = ref false in
  let counter = Sim.register sim (counter_spec poison) in
  Sim.grant sim ~client:app ~server:counter;
  let result = ref 0 in
  let _ =
    Sim.spawn sim ~name:"w" ~home:app (fun sim ->
        (match Sim.invoke sim ~server:counter "inc" [] with
        | Ok (Comp.VInt v) -> result := v
        | _ -> ());
        match Sim.invoke sim ~server:counter "get" [] with
        | Ok (Comp.VInt v) -> result := !result + v
        | _ -> ())
  in
  Alcotest.(check bool) "completed" true (Sim.run sim = Sim.Completed);
  Alcotest.(check int) "invocations counted" 2 (Sim.invocations sim);
  Alcotest.(check int) "1 + 1" 2 !result;
  Alcotest.(check bool) "time charged" true (Sim.now sim > 0)

let test_invoke_without_capability () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let poison = ref false in
  let counter = Sim.register sim (counter_spec poison) in
  let got = ref None in
  let _ =
    Sim.spawn sim ~name:"w" ~home:app (fun sim ->
        got := Some (Sim.invoke sim ~server:counter "inc" []))
  in
  ignore (Sim.run sim);
  Alcotest.(check bool) "EPERM" true (!got = Some (Error Comp.EPERM))

let test_crash_marks_failed_and_vectored () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let poison = ref false in
  let counter = Sim.register sim (counter_spec poison) in
  Sim.grant sim ~client:app ~server:counter;
  let crashes = ref 0 in
  let _ =
    Sim.spawn sim ~name:"w" ~home:app (fun sim ->
        ignore (Sim.invoke sim ~server:counter "inc" []);
        poison := true;
        (try ignore (Sim.invoke sim ~server:counter "inc" [])
         with Comp.Crash _ -> incr crashes);
        (* further invocations are vectored: the component is failed *)
        (try ignore (Sim.invoke sim ~server:counter "inc" [])
         with Comp.Crash _ -> incr crashes);
        Alcotest.(check bool) "marked failed" true (Sim.is_failed sim counter))
  in
  Alcotest.(check bool) "completed" true (Sim.run sim = Sim.Completed);
  Alcotest.(check int) "both crash" 2 !crashes

let test_microreboot_recovers () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let poison = ref false in
  let counter = Sim.register sim (counter_spec poison) in
  Sim.grant sim ~client:app ~server:counter;
  let final = ref (-1) in
  let _ =
    Sim.spawn sim ~name:"w" ~home:app (fun sim ->
        ignore (Sim.invoke sim ~server:counter "inc" []);
        poison := true;
        (try ignore (Sim.invoke sim ~server:counter "inc" [])
         with Comp.Crash _ ->
           poison := false;
           Sim.microreboot sim counter);
        Alcotest.(check bool) "alive again" true (not (Sim.is_failed sim counter));
        Alcotest.(check int) "epoch bumped" 1 (Sim.epoch sim counter);
        match Sim.invoke sim ~server:counter "get" [] with
        | Ok (Comp.VInt v) -> final := v
        | _ -> ())
  in
  Alcotest.(check bool) "completed" true (Sim.run sim = Sim.Completed);
  Alcotest.(check int) "state reset by reboot" 0 !final;
  Alcotest.(check int) "reboot counted" 1 (Sim.reboots sim)

(* A blocking server: "wait" blocks the calling thread inside the server,
   "post" wakes the waiter. *)
let gate_spec () =
  let waiter = ref None in
  {
    Sim.sc_name = "gate";
    sc_image_kb = 16;
    sc_init = (fun _ _ -> waiter := None);
    sc_boot_init = (fun _ _ -> ());
    sc_dispatch =
      (fun sim _cid fn args ->
        match (fn, args) with
        | "wait", [] ->
            waiter := Some (Sim.current_tid sim);
            Sim.block sim;
            Ok Comp.VUnit
        | "post", [] -> (
            match !waiter with
            | Some tid ->
                ignore (Sim.wakeup sim tid);
                waiter := None;
                Ok Comp.VUnit
            | None -> Error Comp.EAGAIN)
        | _ -> Error Comp.EINVAL);
    sc_reflect = (fun _ _ _ _ -> Error Comp.EINVAL);
    sc_usage = (fun _ -> None);
  }

let test_block_inside_server () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let gate = Sim.register sim (gate_spec ()) in
  Sim.grant sim ~client:app ~server:gate;
  let woke = ref false in
  let _ =
    Sim.spawn sim ~name:"waiter" ~home:app (fun sim ->
        ignore (Sim.invoke sim ~server:gate "wait" []);
        woke := true)
  in
  let _ =
    Sim.spawn sim ~name:"poster" ~home:app (fun sim ->
        Sim.yield sim;
        ignore (Sim.invoke sim ~server:gate "post" []))
  in
  Alcotest.(check bool) "completed" true (Sim.run sim = Sim.Completed);
  Alcotest.(check bool) "waiter woke" true !woke

let test_divert_on_reboot () =
  (* A thread blocked inside a server that gets micro-rebooted must be
     diverted: its invocation raises Comp.Diverted back in the client. *)
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let gate = Sim.register sim (gate_spec ()) in
  Sim.grant sim ~client:app ~server:gate;
  let diverted = ref false in
  let waiter_tid = ref (-1) in
  let _ =
    Sim.spawn sim ~name:"waiter" ~home:app (fun sim ->
        waiter_tid := Sim.current_tid sim;
        try ignore (Sim.invoke sim ~server:gate "wait" [])
        with Comp.Diverted { cid } ->
          Alcotest.(check int) "diverted from gate" gate cid;
          diverted := true)
  in
  let _ =
    Sim.spawn sim ~name:"booter" ~home:app (fun sim ->
        Sim.yield sim;
        (* crash + reboot the gate while the waiter is blocked inside *)
        Sim.mark_failed sim gate ~detector:"test";
        Sim.microreboot sim gate;
        (* T0: wake the previously blocked thread; it diverts on resume *)
        ignore (Sim.wakeup sim !waiter_tid))
  in
  Alcotest.(check bool) "completed" true (Sim.run sim = Sim.Completed);
  Alcotest.(check bool) "waiter diverted" true !diverted

let test_fatal_segfault () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let bad =
    Sim.register sim
      (trivial_spec ~name:"bad"
         ~dispatch:(fun _ cid _ _ -> raise (Comp.Sys_segfault { cid }))
         ())
  in
  Sim.grant sim ~client:app ~server:bad;
  let _ =
    Sim.spawn sim ~name:"w" ~home:app (fun sim ->
        ignore (Sim.invoke sim ~server:bad "boom" []))
  in
  match Sim.run sim with
  | Sim.Fatal (Sim.Fatal_segfault cid) -> Alcotest.(check int) "cid" bad cid
  | r -> Alcotest.failf "expected segfault, got %a" Sim.pp_run_result r

let test_upcall () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let svc = Sim.register sim (trivial_spec ~name:"svc" ()) in
  Sim.grant sim ~client:app ~server:svc;
  Sim.register_upcall sim ~client:app "rebuild" (fun _ args ->
      match args with
      | [ Comp.VInt x ] -> Ok (Comp.VInt (x * 2))
      | _ -> Error Comp.EINVAL);
  let got = ref 0 in
  let _ =
    Sim.spawn sim ~name:"w" ~home:app (fun sim ->
        match Sim.upcall sim ~client:app "rebuild" [ Comp.VInt 21 ] with
        | Ok (Comp.VInt v) -> got := v
        | _ -> ())
  in
  Alcotest.(check bool) "completed" true (Sim.run sim = Sim.Completed);
  Alcotest.(check int) "upcall result" 42 !got

let test_dispatch_hook_runs () =
  let sim = Sim.create () in
  let app = Sim.register sim (trivial_spec ()) in
  let poison = ref false in
  let counter = Sim.register sim (counter_spec poison) in
  Sim.grant sim ~client:app ~server:counter;
  let seen = ref [] in
  Sim.set_on_dispatch sim (Some (fun _ cid fn -> seen := (cid, fn) :: !seen));
  let _ =
    Sim.spawn sim ~name:"w" ~home:app (fun sim ->
        ignore (Sim.invoke sim ~server:counter "inc" []))
  in
  ignore (Sim.run sim);
  Alcotest.(check bool) "hook saw dispatch" true (!seen = [ (counter, "inc") ])

let test_determinism () =
  (* Two identical simulations produce identical clocks and counters. *)
  let build () =
    let sim = Sim.create ~seed:7 () in
    let app = Sim.register sim (trivial_spec ()) in
    let poison = ref false in
    let counter = Sim.register sim (counter_spec poison) in
    Sim.grant sim ~client:app ~server:counter;
    for i = 1 to 3 do
      ignore
        (Sim.spawn sim ~prio:i ~name:(Printf.sprintf "w%d" i) ~home:app
           (fun sim ->
             for _ = 1 to 10 do
               ignore (Sim.invoke sim ~server:counter "inc" []);
               Sim.yield sim
             done))
    done;
    ignore (Sim.run sim);
    (Sim.now sim, Sim.invocations sim)
  in
  let a = build () and b = build () in
  Alcotest.(check bool) "identical runs" true (a = b)

let () =
  Alcotest.run "sg_os"
    [
      ( "fibers",
        [
          Alcotest.test_case "spawn and run" `Quick test_spawn_run;
          Alcotest.test_case "priority order" `Quick test_priority_order;
          Alcotest.test_case "block/wakeup ping-pong" `Quick test_block_wakeup_pingpong;
          Alcotest.test_case "sleep advances clock" `Quick test_sleep_advances_clock;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
        ] );
      ( "invocation",
        [
          Alcotest.test_case "basic" `Quick test_invoke_basic;
          Alcotest.test_case "capability denied" `Quick test_invoke_without_capability;
          Alcotest.test_case "crash marks failed" `Quick test_crash_marks_failed_and_vectored;
          Alcotest.test_case "block inside server" `Quick test_block_inside_server;
          Alcotest.test_case "dispatch hook" `Quick test_dispatch_hook_runs;
        ] );
      ( "recovery-substrate",
        [
          Alcotest.test_case "microreboot" `Quick test_microreboot_recovers;
          Alcotest.test_case "divert on reboot" `Quick test_divert_on_reboot;
          Alcotest.test_case "fatal segfault" `Quick test_fatal_segfault;
          Alcotest.test_case "upcall" `Quick test_upcall;
        ] );
      ("determinism", [ Alcotest.test_case "same seed same run" `Quick test_determinism ]);
    ]
