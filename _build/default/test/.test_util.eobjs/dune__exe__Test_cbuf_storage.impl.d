test/test_cbuf_storage.ml: Alcotest Sg_cbuf Sg_os Sg_storage
