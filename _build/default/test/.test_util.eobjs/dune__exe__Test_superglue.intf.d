test/test_superglue.mli:
