test/test_genstubs.ml: Alcotest List Sg_components Sg_genstubs Sg_os String Superglue
