test/test_web.ml: Alcotest Gen List QCheck QCheck_alcotest Sg_components Sg_os Sg_web Superglue
