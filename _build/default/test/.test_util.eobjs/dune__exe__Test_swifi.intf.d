test/test_swifi.mli:
