test/test_components.ml: Alcotest List Printf Sg_components Sg_kernel Sg_os String
