test/test_harness.ml: Alcotest List Sg_harness Sg_swifi Sg_util Superglue
