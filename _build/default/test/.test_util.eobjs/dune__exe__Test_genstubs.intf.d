test/test_genstubs.mli:
