test/test_c3.ml: Alcotest List Sg_c3 Sg_cbuf Sg_components Sg_os Sg_storage String Superglue
