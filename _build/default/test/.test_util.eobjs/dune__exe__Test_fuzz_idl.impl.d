test/test_fuzz_idl.ml: Alcotest Buffer Gen List Option Printf QCheck QCheck_alcotest Sg_util String Superglue
