test/test_fuzz_idl.mli:
