test/test_util.ml: Alcotest Gen List QCheck QCheck_alcotest Sg_util String
