test/test_crashpoints.ml: Alcotest Format List Printf Sg_components Sg_genstubs Sg_os String Superglue
