test/test_kernel.ml: Alcotest Array Captbl Clock Frames Kernel Ktcb List Option QCheck QCheck_alcotest Reg Regfile Sg_kernel Usage
