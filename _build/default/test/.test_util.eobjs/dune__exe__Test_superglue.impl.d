test/test_superglue.ml: Alcotest Hashtbl List Printf QCheck QCheck_alcotest Sg_components Sg_os String Superglue
