test/test_cbuf_storage.mli:
