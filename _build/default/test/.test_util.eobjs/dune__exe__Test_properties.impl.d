test/test_properties.ml: Alcotest Array Buffer Bytes Char Format Hashtbl List Printf QCheck QCheck_alcotest Sg_components Sg_genstubs Sg_kernel Sg_os Sg_util String Superglue Sys
