test/test_swifi.ml: Alcotest List Sg_components Sg_harness Sg_os Sg_swifi Sg_util String Superglue
