test/test_os.ml: Alcotest Buffer Comp Printf Sg_kernel Sg_os Sim
