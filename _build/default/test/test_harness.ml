(* Smoke tests for the experiment harness: every figure/table driver
   must produce rows with the paper's qualitative shape at reduced
   parameters, so regressions in the benchmark paths are caught by
   `dune runtest`, not first seen in bench output. *)

module Fig6 = Sg_harness.Fig6
module Fig7 = Sg_harness.Fig7
module Table2 = Sg_harness.Table2
module Ablation = Sg_harness.Ablation
module Campaign = Sg_swifi.Campaign
module Stats = Sg_util.Stats

let test_fig6a_shape () =
  let rows = Fig6.infrastructure ~reps:2 ~iters:30 () in
  Alcotest.(check int) "six components" 6 (List.length rows);
  List.iter
    (fun r ->
      if r.Fig6.o_c3.Stats.mean <= 0.0 then
        Alcotest.failf "%s: C3 overhead not positive" r.Fig6.o_iface;
      if r.Fig6.o_sg.Stats.mean <= r.Fig6.o_c3.Stats.mean then
        Alcotest.failf "%s: SuperGlue overhead should exceed C3's" r.Fig6.o_iface)
    rows

let test_fig6b_shape () =
  let rows = Fig6.recovery ~reps:2 () in
  List.iter
    (fun r ->
      if r.Fig6.v_c3.Stats.mean <= 0.0 then
        Alcotest.failf "%s: recovery cost not positive" r.Fig6.v_iface;
      if r.Fig6.v_sg.Stats.mean < r.Fig6.v_c3.Stats.mean then
        Alcotest.failf "%s: SuperGlue per-descriptor recovery below C3's"
          r.Fig6.v_iface)
    rows;
  let find iface = List.find (fun r -> r.Fig6.v_iface = iface) rows in
  (* the paper's ordering claim: the event manager (all mechanisms but
     D0) costs more than the lock (T0/R0/T1 only) *)
  if (find "evt").Fig6.v_sg.Stats.mean <= (find "lock").Fig6.v_sg.Stats.mean
  then Alcotest.fail "event recovery should cost more than lock recovery"

let test_fig6c_shape () =
  let rows = Fig6.loc () in
  List.iter
    (fun r ->
      if r.Fig6.l_idl <= 0 || r.Fig6.l_generated <= 0 then
        Alcotest.failf "%s: missing LOC data" r.Fig6.l_iface;
      if r.Fig6.l_generated <= r.Fig6.l_idl then
        Alcotest.failf "%s: generated code should exceed the IDL" r.Fig6.l_iface)
    rows

let test_table2_quick () =
  let rows = Table2.run ~injections:80 () in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  List.iter
    (fun (r : Campaign.row) ->
      Alcotest.(check int) (r.Campaign.r_iface ^ " injected") 80 r.Campaign.r_injected;
      if Campaign.success_rate r < 0.75 then
        Alcotest.failf "%s: success rate %.2f below band" r.Campaign.r_iface
          (Campaign.success_rate r))
    rows

let test_fig7_quick () =
  let rows = Fig7.run ~requests:4_000 ~reps:1 () in
  let rps name =
    (List.find (fun r -> r.Fig7.w_config = name) rows).Fig7.w_rps.Stats.mean
  in
  let base = rps "composite (base)" in
  let c3 = rps "composite + c3" in
  let sg = rps "composite + superglue" in
  if not (base > c3 && c3 > sg) then
    Alcotest.failf "ordering violated: base=%.0f c3=%.0f sg=%.0f" base c3 sg;
  let slow = 100.0 *. (base -. sg) /. base in
  if slow < 8.0 || slow > 16.0 then
    Alcotest.failf "superglue slowdown %.1f%% outside the paper's band" slow;
  List.iter
    (fun r -> Alcotest.(check int) (r.Fig7.w_config ^ " errors") 0 r.Fig7.w_errors)
    rows

let test_ablation_quick () =
  match Ablation.run ~descriptors:20 () with
  | [ ondemand; eager ] ->
      if eager.Ablation.a_first_access_us <= 3.0 *. ondemand.Ablation.a_first_access_us
      then
        Alcotest.failf "eager (%.1f us) should dwarf on-demand (%.1f us)"
          eager.Ablation.a_first_access_us ondemand.Ablation.a_first_access_us;
      Alcotest.(check int) "on-demand walks one descriptor" 1
        ondemand.Ablation.a_walks_at_access;
      Alcotest.(check int) "eager walks them all" 21 eager.Ablation.a_walks_at_access
  | _ -> Alcotest.fail "expected two rows"

let test_cmon_empties_other () =
  let plain =
    Campaign.run ~mode:Superglue.Stubset.mode ~iface:"sched" ~injections:300 ()
  in
  let cmon =
    Campaign.run ~cmon_period_ns:5_000 ~mode:Superglue.Stubset.mode
      ~iface:"sched" ~injections:300 ()
  in
  Alcotest.(check int) "no latent faults with the monitor" 0 cmon.Campaign.r_other;
  if Campaign.success_rate cmon < Campaign.success_rate plain then
    Alcotest.fail "the monitor should not reduce the success rate"

let () =
  Alcotest.run "sg_harness"
    [
      ( "fig6",
        [
          Alcotest.test_case "(a) tracking overhead shape" `Quick test_fig6a_shape;
          Alcotest.test_case "(b) recovery overhead shape" `Quick test_fig6b_shape;
          Alcotest.test_case "(c) LOC shape" `Quick test_fig6c_shape;
        ] );
      ("table2", [ Alcotest.test_case "quick campaign" `Quick test_table2_quick ]);
      ("fig7", [ Alcotest.test_case "quick throughput" `Quick test_fig7_quick ]);
      ( "extensions",
        [
          Alcotest.test_case "ablation" `Quick test_ablation_quick;
          Alcotest.test_case "cmon" `Quick test_cmon_empties_other;
        ] );
    ]
