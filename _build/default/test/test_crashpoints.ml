(* Exhaustive single-crash-point testing: for every service, enumerate
   every dispatch the fault-free workload performs against it and run one
   fresh execution per point with exactly one crash injected there. Every
   such execution must complete with all postconditions intact — a
   systematic sweep of the recovery state space that random storms only
   sample. *)

module Sim = Sg_os.Sim
module Comp = Sg_os.Comp
module Sysbuild = Sg_components.Sysbuild
module Workloads = Sg_components.Workloads

let count_dispatches mode iface ~iters =
  let sys = Sysbuild.build mode in
  let target = Sysbuild.cid_of_iface sys iface in
  let n = ref 0 in
  Sim.set_on_dispatch sys.Sysbuild.sys_sim
    (Some (fun _ cid _ -> if cid = target then incr n));
  let check = Workloads.setup sys ~iface ~iters in
  (match Sim.run sys.Sysbuild.sys_sim with
  | Sim.Completed -> ()
  | r -> Alcotest.failf "baseline run failed: %a" Sim.pp_run_result r);
  (match check () with
  | [] -> ()
  | v -> Alcotest.failf "baseline violations: %s" (String.concat "; " v));
  !n

let crash_at mode iface ~iters ~point =
  let sys = Sysbuild.build mode in
  let target = Sysbuild.cid_of_iface sys iface in
  let n = ref 0 in
  Sim.set_on_dispatch sys.Sysbuild.sys_sim
    (Some
       (fun sim cid _ ->
         if cid = target then begin
           incr n;
           if !n = point then begin
             Sim.mark_failed sim cid ~detector:"crashpoint";
             raise (Comp.Crash { cid; detector = "crashpoint" })
           end
         end));
  let check = Workloads.setup sys ~iface ~iters in
  match Sim.run sys.Sysbuild.sys_sim with
  | Sim.Completed -> check ()
  | r -> [ Format.asprintf "run: %a" Sim.pp_run_result r ]

let test_every_point mode_name mode iface () =
  let iters = 6 in
  let total = count_dispatches mode iface ~iters in
  if total < 5 then Alcotest.failf "suspiciously few dispatches (%d)" total;
  let failures = ref [] in
  for point = 1 to total do
    match crash_at mode iface ~iters ~point with
    | [] -> ()
    | violations ->
        failures :=
          Printf.sprintf "point %d/%d: %s" point total
            (String.concat "; " violations)
          :: !failures
  done;
  match !failures with
  | [] -> ()
  | fs ->
      Alcotest.failf "[%s/%s] %d of %d crash points not recovered: %s"
        mode_name iface (List.length fs) total
        (String.concat " | " (List.rev fs))

let () =
  let cases mode_name mode =
    List.map
      (fun iface ->
        Alcotest.test_case
          (Printf.sprintf "%s: every crash point recovers" iface)
          `Quick
          (test_every_point mode_name mode iface))
      Workloads.all_ifaces
  in
  Alcotest.run "crashpoints"
    [
      ("c3", cases "c3" (Sysbuild.Stubbed Sysbuild.c3_stubset));
      ("superglue", cases "superglue" Superglue.Stubset.mode);
      ("superglue-gen", cases "superglue-gen" Sg_genstubs.Gen_stubset.mode);
    ]
