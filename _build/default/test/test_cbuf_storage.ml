(* Unit tests for the trusted substrates: the zero-copy buffer manager
   and the storage component. *)

module Sim = Sg_os.Sim
module Comp = Sg_os.Comp
module Cbuf = Sg_cbuf.Cbuf
module Storage = Sg_storage.Storage

let with_sim f =
  let sim = Sim.create () in
  f sim

let test_cbuf_alloc_write_read () =
  with_sim (fun sim ->
      let t = Cbuf.create () in
      let id = Cbuf.alloc t sim ~owner:1 ~size:16 in
      Alcotest.(check bool) "write ok" true
        (Cbuf.write t sim ~writer:1 id ~pos:0 "hello" = Ok ());
      Alcotest.(check bool) "read own" true
        (Cbuf.read t ~reader:1 id ~pos:0 ~len:5 = Ok "hello");
      Alcotest.(check (option int)) "size" (Some 16) (Cbuf.size t id);
      Alcotest.(check (option int)) "owner" (Some 1) (Cbuf.owner t id))

let test_cbuf_access_control () =
  with_sim (fun sim ->
      let t = Cbuf.create () in
      let id = Cbuf.alloc t sim ~owner:1 ~size:8 in
      ignore (Cbuf.write t sim ~writer:1 id ~pos:0 "data");
      (* only the producer may write; consumers map read-only *)
      Alcotest.(check bool) "foreign write denied" true
        (Cbuf.write t sim ~writer:2 id ~pos:0 "x" = Error `Denied);
      Alcotest.(check bool) "unshared read denied" true
        (Cbuf.read t ~reader:2 id ~pos:0 ~len:4 = Error `Denied);
      Cbuf.grant_read t sim id ~reader:2;
      Alcotest.(check bool) "granted read ok" true
        (Cbuf.read t ~reader:2 id ~pos:0 ~len:4 = Ok "data"))

let test_cbuf_bounds () =
  with_sim (fun sim ->
      let t = Cbuf.create () in
      let id = Cbuf.alloc t sim ~owner:1 ~size:4 in
      Alcotest.(check bool) "write out of bounds" true
        (Cbuf.write t sim ~writer:1 id ~pos:2 "abc" = Error `Bounds);
      Alcotest.(check bool) "read out of bounds" true
        (Cbuf.read t ~reader:1 id ~pos:0 ~len:5 = Error `Bounds);
      Alcotest.(check bool) "unknown buffer" true
        (Cbuf.read t ~reader:1 999 ~pos:0 ~len:1 = Error `Unknown))

let test_cbuf_free () =
  with_sim (fun sim ->
      let t = Cbuf.create () in
      let id = Cbuf.alloc t sim ~owner:1 ~size:4 in
      Alcotest.(check int) "count" 1 (Cbuf.count t);
      Cbuf.free t id;
      Alcotest.(check int) "freed" 0 (Cbuf.count t))

let test_storage_desc_registry () =
  with_sim (fun sim ->
      let t = Storage.create (Cbuf.create ()) in
      Storage.register_desc t sim ~space:"evt" ~id:7 ~creator:3
        ~meta:[ ("grp", Comp.VInt 1) ];
      (match Storage.lookup_desc t sim ~space:"evt" ~id:7 with
      | Some (3, [ ("grp", Comp.VInt 1) ]) -> ()
      | _ -> Alcotest.fail "lookup mismatch");
      Alcotest.(check bool) "other space empty" true
        (Storage.lookup_desc t sim ~space:"fs" ~id:7 = None);
      Alcotest.(check (list int)) "descs_in" [ 7 ] (Storage.descs_in t ~space:"evt");
      Storage.remove_desc t sim ~space:"evt" ~id:7;
      Alcotest.(check bool) "removed" true
        (Storage.lookup_desc t sim ~space:"evt" ~id:7 = None))

let test_storage_slices () =
  with_sim (fun sim ->
      let cbufs = Cbuf.create () in
      let t = Storage.create cbufs in
      let c1 = Cbuf.alloc cbufs sim ~owner:1 ~size:4 in
      let c2 = Cbuf.alloc cbufs sim ~owner:1 ~size:4 in
      Storage.put_slice t sim ~space:"fs" ~id:5 ~off:4 ~len:4 ~cbuf:c2;
      Storage.put_slice t sim ~space:"fs" ~id:5 ~off:0 ~len:4 ~cbuf:c1;
      Alcotest.(check (list (triple int int int)))
        "slices replay in write order"
        [ (4, 4, c2); (0, 4, c1) ]
        (Storage.slices t sim ~space:"fs" ~id:5);
      (* a rewrite covering an old slice replaces it *)
      Storage.put_slice t sim ~space:"fs" ~id:5 ~off:0 ~len:4 ~cbuf:c2;
      Alcotest.(check int) "covered slice dropped" 2 (Storage.slice_count t);
      Storage.drop_slices t sim ~space:"fs" ~id:5;
      Alcotest.(check int) "dropped" 0 (Storage.slice_count t))

let test_storage_charges_time () =
  with_sim (fun sim ->
      let t = Storage.create (Cbuf.create ()) in
      let t0 = Sim.now sim in
      Storage.register_desc t sim ~space:"evt" ~id:1 ~creator:1 ~meta:[];
      Alcotest.(check bool) "virtual time charged" true (Sim.now sim > t0))

let () =
  Alcotest.run "sg_cbuf_storage"
    [
      ( "cbuf",
        [
          Alcotest.test_case "alloc/write/read" `Quick test_cbuf_alloc_write_read;
          Alcotest.test_case "access control" `Quick test_cbuf_access_control;
          Alcotest.test_case "bounds" `Quick test_cbuf_bounds;
          Alcotest.test_case "free" `Quick test_cbuf_free;
        ] );
      ( "storage",
        [
          Alcotest.test_case "descriptor registry" `Quick test_storage_desc_registry;
          Alcotest.test_case "data slices" `Quick test_storage_slices;
          Alcotest.test_case "charges time" `Quick test_storage_charges_time;
        ] );
    ]
