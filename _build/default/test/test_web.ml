(* Tests for the web subsystem: HTTP message handling, the componentized
   server, the ab-style generator, and throughput under fault storms. *)

module Sim = Sg_os.Sim
module Sysbuild = Sg_components.Sysbuild
module Httpmsg = Sg_web.Httpmsg
module Server = Sg_web.Server
module Abench = Sg_web.Abench

let test_request_roundtrip () =
  let text = Httpmsg.render_request ~path:"/a/b.html" () in
  match Httpmsg.parse_request text with
  | Ok r ->
      Alcotest.(check string) "method" "GET" r.Httpmsg.rq_method;
      Alcotest.(check string) "path" "/a/b.html" r.Httpmsg.rq_path;
      Alcotest.(check string) "version" "HTTP/1.1" r.Httpmsg.rq_version;
      Alcotest.(check (option string)) "host header" (Some "localhost")
        (List.assoc_opt "host" r.Httpmsg.rq_headers)
  | Error e -> Alcotest.fail e

let test_request_malformed () =
  (match Httpmsg.parse_request "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty request accepted");
  match Httpmsg.parse_request "GEThttp nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed request line accepted"

let test_response_roundtrip () =
  let text = Httpmsg.render_response (Httpmsg.ok ~body:"payload") in
  match Httpmsg.parse_response text with
  | Ok r ->
      Alcotest.(check int) "status" 200 r.Httpmsg.rs_status;
      Alcotest.(check string) "body" "payload" r.Httpmsg.rs_body
  | Error e -> Alcotest.fail e

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request paths round-trip" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 1 40) (Gen.char_range 'a' 'z'))
    (fun path ->
      let text = Httpmsg.render_request ~path:("/" ^ path) () in
      match Httpmsg.parse_request text with
      | Ok r -> r.Httpmsg.rq_path = "/" ^ path
      | Error _ -> false)

let run_server mode ~fault_period_ns ~requests =
  let sys = Sysbuild.build mode in
  let server = Server.install sys in
  let r = Abench.run ?fault_period_ns ~requests sys server in
  (sys, server, r)

let test_server_serves () =
  let _, server, r =
    run_server Sysbuild.Base ~fault_period_ns:None ~requests:500
  in
  Alcotest.(check int) "no errors" 0 r.Abench.ab_errors;
  Alcotest.(check int) "all served" 500 !(server.Server.ws_served);
  Alcotest.(check bool) "logger kept up" true (!(server.Server.ws_logged) >= 500);
  Alcotest.(check bool) "throughput positive" true (r.Abench.ab_rps > 0.0)

let test_server_survives_fault_storm () =
  let sys, _, r =
    run_server Superglue.Stubset.mode
      ~fault_period_ns:(Some 3_000_000) ~requests:2_000
  in
  Alcotest.(check int) "no errors despite crashes" 0 r.Abench.ab_errors;
  Alcotest.(check bool) "several crashes injected" true (r.Abench.ab_faults >= 5);
  Alcotest.(check bool) "micro-reboots happened" true
    (Sim.reboots sys.Sysbuild.sys_sim >= r.Abench.ab_faults)

let test_base_dies_under_faults () =
  match
    run_server Sysbuild.Base ~fault_period_ns:(Some 3_000_000) ~requests:2_000
  with
  | _ -> Alcotest.fail "base system should not survive service crashes"
  | exception Failure _ -> ()

let test_stub_modes_cost_more () =
  let rps mode =
    let _, _, r = run_server mode ~fault_period_ns:None ~requests:2_000 in
    r.Abench.ab_rps
  in
  let base = rps Sysbuild.Base in
  let c3 = rps (Sysbuild.Stubbed Sysbuild.c3_stubset) in
  let sg = rps Superglue.Stubset.mode in
  if not (base > c3 && c3 > sg) then
    Alcotest.failf "expected base > c3 > superglue, got %.0f / %.0f / %.0f" base
      c3 sg

let test_apache_reference () =
  let r = Abench.apache_reference ~requests:1000 in
  Alcotest.(check bool) "around the paper's 17600" true
    (r.Abench.ab_rps > 17_000.0 && r.Abench.ab_rps < 18_500.0)

let () =
  Alcotest.run "sg_web"
    [
      ( "httpmsg",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick test_request_malformed;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
        ] );
      ( "server",
        [
          Alcotest.test_case "serves requests" `Quick test_server_serves;
          Alcotest.test_case "survives fault storm" `Quick test_server_survives_fault_storm;
          Alcotest.test_case "base dies under faults" `Quick test_base_dies_under_faults;
          Alcotest.test_case "stub cost ordering" `Quick test_stub_modes_cost_more;
          Alcotest.test_case "apache reference" `Quick test_apache_reference;
        ] );
    ]
