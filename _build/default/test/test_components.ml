(* Integration tests: the six system services and their paper workloads,
   in the base and C3 configurations, without and with forced crashes.

   The "crash every Nth dispatch" tests are the heart of the recovery
   machinery's validation: the workload must complete with all
   postconditions intact while its service is repeatedly killed. *)

module Sim = Sg_os.Sim
module Comp = Sg_os.Comp
module Sysbuild = Sg_components.Sysbuild
module Workloads = Sg_components.Workloads

let check_clean sys result check =
  (match result with
  | Sim.Completed -> ()
  | r ->
      Alcotest.failf "[%s] run did not complete: %a" sys.Sysbuild.sys_mode
        Sim.pp_run_result r);
  match check () with
  | [] -> ()
  | violations ->
      Alcotest.failf "[%s] postconditions violated: %s" sys.Sysbuild.sys_mode
        (String.concat "; " violations)

let run_workload mode iface iters =
  let sys = Sysbuild.build mode in
  let check = Workloads.setup sys ~iface ~iters in
  let result = Sim.run sys.Sysbuild.sys_sim in
  (sys, result, check)

let test_base_faultfree iface () =
  let sys, result, check = run_workload Sysbuild.Base iface 25 in
  check_clean sys result check

let test_c3_faultfree iface () =
  let sys, result, check =
    run_workload (Sysbuild.Stubbed Sysbuild.c3_stubset) iface 25
  in
  check_clean sys result check;
  Alcotest.(check int) "no reboots without faults" 0 (Sim.reboots sys.Sysbuild.sys_sim)

(* Force a crash in the target service every [period]-th dispatch. *)
let install_crasher sys iface ~period =
  let target = Sysbuild.cid_of_iface sys iface in
  let count = ref 0 in
  Sim.set_on_dispatch sys.Sysbuild.sys_sim
    (Some
       (fun sim cid _fn ->
         if cid = target then begin
           incr count;
           if !count mod period = 0 then begin
             Sim.mark_failed sim cid ~detector:"forced";
             raise (Comp.Crash { cid; detector = "forced" })
           end
         end))

let test_c3_recovers iface period () =
  let sys = Sysbuild.build (Sysbuild.Stubbed Sysbuild.c3_stubset) in
  let check = Workloads.setup sys ~iface ~iters:25 in
  install_crasher sys iface ~period;
  let result = Sim.run sys.Sysbuild.sys_sim in
  check_clean sys result check;
  let reboots = Sim.reboots sys.Sysbuild.sys_sim in
  if reboots = 0 then Alcotest.failf "expected at least one micro-reboot";
  ()

let test_base_crash_is_fatal () =
  (* without recovery, a crashed system service brings the workload (and
     thus the system) down — the motivation for the whole paper *)
  let sys = Sysbuild.build Sysbuild.Base in
  let _check = Workloads.setup sys ~iface:"fs" ~iters:10 in
  install_crasher sys "fs" ~period:5;
  match Sim.run sys.Sysbuild.sys_sim with
  | Sim.Fatal _ -> ()
  | r -> Alcotest.failf "expected a fatal run, got %a" Sim.pp_run_result r

let test_c3_tracking_overhead_charged () =
  (* the same workload must take longer with stubs than without *)
  let t_base =
    let sys, result, check = run_workload Sysbuild.Base "fs" 50 in
    check_clean sys result check;
    Sim.now sys.Sysbuild.sys_sim
  in
  let t_c3 =
    let sys, result, check =
      run_workload (Sysbuild.Stubbed Sysbuild.c3_stubset) "fs" 50
    in
    check_clean sys result check;
    Sim.now sys.Sysbuild.sys_sim
  in
  if t_c3 <= t_base then
    Alcotest.failf "C3 run (%d ns) should cost more than base (%d ns)" t_c3 t_base

let test_mm_subtree_after_recovery () =
  (* build a 3-level alias chain, crash the MM, then release the root:
     the whole subtree must be revoked through recovery (D0/D1) *)
  let sys = Sysbuild.build (Sysbuild.Stubbed Sysbuild.c3_stubset) in
  let sim = sys.Sysbuild.sys_sim in
  let app1 = sys.Sysbuild.sys_app1 and app2 = sys.Sysbuild.sys_app2 in
  let port = sys.Sysbuild.sys_port ~client:app1 ~iface:"mm" in
  let module Mm = Sg_components.Mm in
  let revoked = ref 0 in
  let _ =
    Sim.spawn sim ~name:"mm-chain" ~home:app1 (fun sim ->
        Mm.get_page port sim ~vaddr:0x10000;
        Mm.alias_page port sim ~svaddr:0x10000 ~dst:app2 ~dvaddr:0x20000;
        Mm.alias_page port sim ~svaddr:0x10000 ~dst:app1 ~dvaddr:0x30000;
        (* crash the memory manager: all alias trees are lost *)
        Sim.mark_failed sim sys.Sysbuild.sys_mm ~detector:"test";
        revoked := Mm.release_page port sim ~vaddr:0x10000)
  in
  (match Sim.run sim with
  | Sim.Completed -> ()
  | r -> Alcotest.failf "run failed: %a" Sim.pp_run_result r);
  Alcotest.(check int) "whole subtree revoked" 3 !revoked;
  let kernel = Sim.kernel sim in
  Alcotest.(check int) "no residual kernel mappings" 0
    (Sg_kernel.Frames.mapping_count kernel.Sg_kernel.Kernel.frames)

let test_fs_data_survives_reboot () =
  (* write a file, crash the FS, read it back through recovery (G1) *)
  let sys = Sysbuild.build (Sysbuild.Stubbed Sysbuild.c3_stubset) in
  let sim = sys.Sysbuild.sys_sim in
  let app = sys.Sysbuild.sys_app1 in
  let port = sys.Sysbuild.sys_port ~client:app ~iface:"fs" in
  let module Ramfs = Sg_components.Ramfs in
  let got = ref "" in
  let _ =
    Sim.spawn sim ~name:"fs-g1" ~home:app (fun sim ->
        let fd = Ramfs.tsplit port sim ~parent:Ramfs.root_fd ~name:"data.bin" in
        ignore (Ramfs.twrite port sim ~fd ~data:"hello");
        ignore (Ramfs.twrite port sim ~fd ~data:" world");
        Sim.mark_failed sim sys.Sysbuild.sys_fs ~detector:"test";
        ignore (Ramfs.tlseek port sim ~fd ~off:0);
        got := Ramfs.tread port sim ~fd ~len:11)
  in
  (match Sim.run sim with
  | Sim.Completed -> ()
  | r -> Alcotest.failf "run failed: %a" Sim.pp_run_result r);
  Alcotest.(check string) "contents restored from storage" "hello world" !got

let test_evt_global_descriptor_recovery () =
  (* app2 waits on an event, the event manager crashes, app1 triggers it
     with the stale global id: the server stub must consult the storage
     component and upcall the creator (G0/U0) *)
  let sys = Sysbuild.build (Sysbuild.Stubbed Sysbuild.c3_stubset) in
  let sim = sys.Sysbuild.sys_sim in
  let app1 = sys.Sysbuild.sys_app1 and app2 = sys.Sysbuild.sys_app2 in
  let port1 = sys.Sysbuild.sys_port ~client:app1 ~iface:"evt" in
  let port2 = sys.Sysbuild.sys_port ~client:app2 ~iface:"evt" in
  let module Event = Sg_components.Event in
  let woke = ref false in
  let evt_id = ref 0 in
  let _ =
    Sim.spawn sim ~prio:5 ~name:"waiter" ~home:app2 (fun sim ->
        evt_id := Event.split port2 sim ~compid:app2 ~parent:0 ~grp:7;
        Event.wait port2 sim ~compid:app2 !evt_id;
        woke := true)
  in
  let _ =
    Sim.spawn sim ~prio:6 ~name:"trigger" ~home:app1 (fun sim ->
        Sim.yield sim;
        (* kill the event manager while the waiter is blocked inside *)
        Sim.mark_failed sim sys.Sysbuild.sys_evt ~detector:"test";
        (* app1 never created the descriptor: its stub has no record, so
           recovery must flow through storage + upcall into app2 *)
        Event.trigger port1 sim ~compid:app1 !evt_id)
  in
  (match Sim.run sim with
  | Sim.Completed -> ()
  | r -> Alcotest.failf "run failed: %a" Sim.pp_run_result r);
  Alcotest.(check bool) "waiter woke through recovered event" true !woke

let recovery_case iface period =
  Alcotest.test_case
    (Printf.sprintf "%s survives crash every %d dispatches" iface period)
    `Quick (test_c3_recovers iface period)

let () =
  let base_cases =
    List.map
      (fun iface ->
        Alcotest.test_case (iface ^ " fault-free") `Quick (test_base_faultfree iface))
      Workloads.all_ifaces
  in
  let c3_cases =
    List.map
      (fun iface ->
        Alcotest.test_case (iface ^ " fault-free") `Quick (test_c3_faultfree iface))
      Workloads.all_ifaces
  in
  let crash_cases =
    List.concat_map
      (fun iface -> [ recovery_case iface 7; recovery_case iface 23 ])
      Workloads.all_ifaces
  in
  Alcotest.run "sg_components"
    [
      ("base", base_cases);
      ("c3-faultfree", c3_cases);
      ("c3-recovery", crash_cases);
      ( "scenarios",
        [
          Alcotest.test_case "base crash is fatal" `Quick test_base_crash_is_fatal;
          Alcotest.test_case "tracking overhead charged" `Quick
            test_c3_tracking_overhead_charged;
          Alcotest.test_case "mm subtree recovery" `Quick test_mm_subtree_after_recovery;
          Alcotest.test_case "fs data survives reboot" `Quick test_fs_data_survives_reboot;
          Alcotest.test_case "evt global descriptor recovery" `Quick
            test_evt_global_descriptor_recovery;
        ] );
    ]
